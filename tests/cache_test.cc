// Tests for the noisy-answer DP cache and the workload-aware budget
// planner: query normalization, exact-repeat serving with the epsilon
// gate, greedy prefix/suffix tiling with remainder purchase, cut-point
// demotion, invalidation, and the planner's stretch/afford arithmetic —
// plus the client-level property suite: with the cache on, hit/miss
// patterns and answers are bit-identical to a no-cache replay of the
// same admission sequence across pool sizes, both schedulers, and
// loopback RPC; ledgers charge exactly the uncovered-remainder cost; a
// cancelled remainder purchase leaves the cache consistent. The file
// runs in the CI ThreadSanitizer job.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/answer_cache.h"
#include "cache/budget_planner.h"
#include "exec/federation_client.h"
#include "exec/in_process_endpoint.h"
#include "rpc/remote_endpoint.h"
#include "rpc/server.h"
#include "workload/datagen.h"

namespace fedaqp {
namespace {

Schema TestSchema() { return Schema({{"d0", 200}, {"d1", 100}}); }

RangeQuery Dim0(Value lo, Value hi) {
  return RangeQueryBuilder(Aggregation::kCount).Where(0, lo, hi).Build();
}

RangeQuery Dim1(Value lo, Value hi) {
  return RangeQueryBuilder(Aggregation::kCount).Where(1, lo, hi).Build();
}

constexpr PrivacyBudget kEps1{1.0, 1e-3};

// ------------------------------------------------------------ normalization --

TEST(NormalizeQueryTest, ClipsToDomainAndDropsFullDomainRanges) {
  const Schema schema = TestSchema();
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount)
                     .Where(0, -5, 300)  // clips to [0,199] == full domain
                     .Where(1, 10, 20)
                     .Build();
  NormalizedQuery norm = NormalizeQuery(q, schema);
  ASSERT_EQ(norm.ranges.size(), 1u);
  EXPECT_EQ(norm.ranges[0].dim_index, 1u);
  EXPECT_EQ(norm.ranges[0].lo, 10);
  EXPECT_EQ(norm.ranges[0].hi, 20);
  // The same statistic asked two ways normalizes to the same key.
  EXPECT_EQ(norm.KeyString("alice"),
            NormalizeQuery(Dim1(10, 20), schema).KeyString("alice"));
  // ... but not across analysts (answers are per-analyst purchases).
  EXPECT_NE(norm.KeyString("alice"), norm.KeyString("bob"));
}

TEST(NormalizeQueryTest, DifferentlyPhrasedRepeatIsAnExactHit) {
  NoisyAnswerCache cache(TestSchema());
  auto first = cache.Resolve("alice", Dim1(10, 20), kEps1, 1);
  ASSERT_EQ(first.kind, NoisyAnswerCache::Decision::Kind::kMiss);
  NoisyAnswerCache::Publish(*first.purchase, Status::OK(), 42.0, 4.0, true);
  RangeQuery rephrased = RangeQueryBuilder(Aggregation::kCount)
                             .Where(0, -5, 300)
                             .Where(1, 10, 20)
                             .Build();
  auto second = cache.Resolve("alice", rephrased, kEps1, 2);
  EXPECT_EQ(second.kind, NoisyAnswerCache::Decision::Kind::kHit);
  EXPECT_EQ(second.hit, first.purchase);
}

// ------------------------------------------------------- eps gate & repeats --

TEST(AnswerCacheTest, ExactRepeatHonorsEpsilonGate) {
  NoisyAnswerCache cache(TestSchema());
  auto miss = cache.Resolve("alice", Dim0(10, 99), kEps1, 1);
  ASSERT_EQ(miss.kind, NoisyAnswerCache::Decision::Kind::kMiss);
  NoisyAnswerCache::Publish(*miss.purchase, Status::OK(), 100.0, 9.0, true);

  // A lower-accuracy request is free post-processing of the purchase.
  auto lower = cache.Resolve("alice", Dim0(10, 99), {0.5, 1e-3}, 2);
  EXPECT_EQ(lower.kind, NoisyAnswerCache::Decision::Kind::kHit);
  // A higher-accuracy request must re-purchase (and replaces the entry).
  auto higher = cache.Resolve("alice", Dim0(10, 99), {2.0, 1e-3}, 3);
  ASSERT_EQ(higher.kind, NoisyAnswerCache::Decision::Kind::kMiss);
  NoisyAnswerCache::Publish(*higher.purchase, Status::OK(), 101.0, 2.0, true);
  auto after = cache.Resolve("alice", Dim0(10, 99), {1.5, 1e-3}, 4);
  EXPECT_EQ(after.kind, NoisyAnswerCache::Decision::Kind::kHit);
  EXPECT_EQ(after.hit, higher.purchase);
  // Another analyst's purchases never serve this one.
  auto bob = cache.Resolve("bob", Dim0(10, 99), {0.5, 1e-3}, 5);
  EXPECT_EQ(bob.kind, NoisyAnswerCache::Decision::Kind::kMiss);
}

// ------------------------------------------------------------------- tiling --

TEST(AnswerCacheTest, TilesPrefixSuffixAndBuysOnlyTheRemainder) {
  NoisyAnswerCache cache(TestSchema());
  auto a = cache.Resolve("alice", Dim0(0, 49), kEps1, 1);
  auto b = cache.Resolve("alice", Dim0(50, 99), kEps1, 2);
  ASSERT_EQ(a.kind, NoisyAnswerCache::Decision::Kind::kMiss);
  ASSERT_EQ(b.kind, NoisyAnswerCache::Decision::Kind::kMiss);
  NoisyAnswerCache::Publish(*a.purchase, Status::OK(), 10.0, 1.0, true);
  NoisyAnswerCache::Publish(*b.purchase, Status::OK(), 20.0, 1.0, true);

  // [0,99] is fully covered: composed, nothing to buy.
  auto full = cache.Resolve("alice", Dim0(0, 99), kEps1, 3);
  ASSERT_EQ(full.kind, NoisyAnswerCache::Decision::Kind::kComposed);
  EXPECT_FALSE(full.has_remainder);
  ASSERT_EQ(full.parts.size(), 2u);
  EXPECT_EQ(full.parts[0], a.purchase);  // ascending-lo order
  EXPECT_EQ(full.parts[1], b.purchase);
  EXPECT_EQ(full.purchase, nullptr);

  // [0,149] leaves one contiguous remainder [100,149] to purchase.
  auto partial = cache.Resolve("alice", Dim0(0, 149), kEps1, 4);
  ASSERT_EQ(partial.kind, NoisyAnswerCache::Decision::Kind::kComposed);
  EXPECT_TRUE(partial.has_remainder);
  ASSERT_EQ(partial.parts.size(), 2u);
  ASSERT_EQ(partial.remainder_query.ranges().size(), 1u);
  EXPECT_EQ(partial.remainder_query.ranges()[0].lo, 100);
  EXPECT_EQ(partial.remainder_query.ranges()[0].hi, 149);
  ASSERT_NE(partial.purchase, nullptr);
  NoisyAnswerCache::Publish(*partial.purchase, Status::OK(), 30.0, 1.0, true);

  // The purchased remainder now completes [0,149] for free.
  auto again = cache.Resolve("alice", Dim0(0, 149), kEps1, 5);
  EXPECT_EQ(again.kind, NoisyAnswerCache::Decision::Kind::kComposed);
  EXPECT_FALSE(again.has_remainder);
  EXPECT_EQ(again.parts.size(), 3u);

  // An interval aligned to no cached boundary is a plain miss.
  auto off = cache.Resolve("alice", Dim0(20, 60), kEps1, 6);
  EXPECT_EQ(off.kind, NoisyAnswerCache::Decision::Kind::kMiss);

  NoisyAnswerCache::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 6u);
  EXPECT_EQ(stats.exact_hits, 0u);
  EXPECT_EQ(stats.full_compositions, 2u);
  EXPECT_EQ(stats.partial_compositions, 1u);
  EXPECT_EQ(stats.misses, 3u);
}

TEST(AnswerCacheTest, LowEpsilonTilesDoNotServeHighEpsilonRequests) {
  NoisyAnswerCache cache(TestSchema());
  auto a = cache.Resolve("alice", Dim0(0, 49), {0.5, 1e-3}, 1);
  NoisyAnswerCache::Publish(*a.purchase, Status::OK(), 10.0, 1.0, true);
  // The cached [0,49] was bought at eps 0.5; a 1.0-accuracy [0,99]
  // cannot compose over it.
  auto q = cache.Resolve("alice", Dim0(0, 99), kEps1, 2);
  EXPECT_EQ(q.kind, NoisyAnswerCache::Decision::Kind::kMiss);
}

TEST(AnswerCacheTest, CutPointDemotionRepurchasesWholeRange) {
  NoisyAnswerCache::Options opts;
  // Cells on dim 0: [0,49], [50,99], [100,149], [150,199].
  opts.cut_points = {{0, 50, 100, 150, 200}, {}};
  NoisyAnswerCache aligned(TestSchema(), opts);
  auto tiny = aligned.Resolve("alice", Dim0(0, 9), kEps1, 1);
  NoisyAnswerCache::Publish(*tiny.purchase, Status::OK(), 1.0, 1.0, true);
  // Remainder [10,149] spans the same cells as [0,149]: no cluster work
  // saved, so the composition is demoted to a whole-range repurchase.
  auto demoted = aligned.Resolve("alice", Dim0(0, 149), kEps1, 2);
  EXPECT_EQ(demoted.kind, NoisyAnswerCache::Decision::Kind::kMiss);

  // Without cut points the same lookup composes.
  NoisyAnswerCache plain(TestSchema());
  auto tiny2 = plain.Resolve("alice", Dim0(0, 9), kEps1, 1);
  NoisyAnswerCache::Publish(*tiny2.purchase, Status::OK(), 1.0, 1.0, true);
  auto composed = plain.Resolve("alice", Dim0(0, 149), kEps1, 2);
  EXPECT_EQ(composed.kind, NoisyAnswerCache::Decision::Kind::kComposed);

  // A cell-aligned purchase still composes under cut points.
  auto cell = aligned.Resolve("alice", Dim0(150, 199), kEps1, 3);
  NoisyAnswerCache::Publish(*cell.purchase, Status::OK(), 2.0, 1.0, true);
  auto tail = aligned.Resolve("alice", Dim0(100, 199), kEps1, 4);
  EXPECT_EQ(tail.kind, NoisyAnswerCache::Decision::Kind::kComposed);
  EXPECT_TRUE(tail.has_remainder);
  EXPECT_EQ(tail.remainder_query.ranges()[0].hi, 149);
}

TEST(AnswerCacheTest, InvalidateDropsTheEntryForReuse) {
  NoisyAnswerCache cache(TestSchema());
  auto miss = cache.Resolve("alice", Dim0(10, 99), kEps1, 1);
  NoisyAnswerCache::Publish(*miss.purchase, Status::Cancelled("gone"), 0.0,
                            0.0, false);
  cache.Invalidate(miss.purchase, "alice");
  auto again = cache.Resolve("alice", Dim0(10, 99), kEps1, 2);
  EXPECT_EQ(again.kind, NoisyAnswerCache::Decision::Kind::kMiss);
  EXPECT_EQ(cache.stats().invalidated, 1u);
}

// ---------------------------------------------------------------- prediction --

TEST(AnswerCacheTest, PredictChargeableMatchesActualResolution) {
  const std::vector<RangeQuery> workload = {
      Dim0(10, 99),  Dim0(100, 149), Dim0(10, 99), Dim0(10, 149),
      Dim0(20, 60),  Dim1(30, 80),   Dim0(10, 149)};
  const std::vector<PrivacyBudget> budgets(workload.size(), kEps1);

  NoisyAnswerCache simulated(TestSchema());
  std::vector<bool> predicted =
      simulated.PredictChargeable("alice", workload, budgets);

  NoisyAnswerCache actual(TestSchema());
  for (size_t i = 0; i < workload.size(); ++i) {
    auto d = actual.Resolve("alice", workload[i], budgets[i], i + 1);
    const bool charges =
        d.kind == NoisyAnswerCache::Decision::Kind::kMiss ||
        (d.kind == NoisyAnswerCache::Decision::Kind::kComposed &&
         d.has_remainder);
    EXPECT_EQ(predicted[i], charges) << "query " << i;
    if (d.purchase != nullptr) {
      NoisyAnswerCache::Publish(*d.purchase, Status::OK(), 1.0, 1.0, true);
    }
  }
  // Prediction mutated nothing.
  EXPECT_EQ(simulated.stats().entries, 0u);
}

// ------------------------------------------------------------------- planner --

TEST(BudgetPlannerTest, NextQueryBudgetSpreadsTheGrantWithinClamps) {
  BudgetPlanner planner({PrivacyBudget{1.0, 1e-3}, 0.05});
  // Plenty left: the default.
  EXPECT_EQ(planner.NextQueryBudget({100.0, 1.0}, 10).epsilon, 1.0);
  // Stretched: 2.0 over 8 queries.
  EXPECT_NEAR(planner.NextQueryBudget({2.0, 1.0}, 8).epsilon, 0.25, 1e-12);
  // Never below the floor.
  EXPECT_EQ(planner.NextQueryBudget({0.1, 1.0}, 100).epsilon, 0.05);
  // Horizon 0 disables stretching.
  EXPECT_EQ(planner.NextQueryBudget({0.1, 1.0}, 0).epsilon, 1.0);
  // Delta is never stretched.
  EXPECT_EQ(planner.NextQueryBudget({2.0, 1.0}, 8).delta, 1e-3);
}

TEST(BudgetPlannerTest, PlanStretchesEpsilonAndCountsCacheHits) {
  NoisyAnswerCache cache(TestSchema());
  auto bought = cache.Resolve("alice", Dim0(10, 99), kEps1, 1);
  NoisyAnswerCache::Publish(*bought.purchase, Status::OK(), 5.0, 1.0, true);

  BudgetPlanner planner({PrivacyBudget{1.0, 1e-3}, 0.05});
  const std::vector<RangeQuery> workload = {Dim0(10, 99), Dim0(0, 9),
                                            Dim1(0, 49), Dim1(50, 80)};
  // 3 chargeable queries against eps 1.5: stretched to 0.5 each.
  BudgetPlanner::WorkloadPlan plan =
      planner.Plan("alice", workload, {1.5, 1e-2}, &cache);
  EXPECT_EQ(plan.predicted_hits, 1u);
  EXPECT_EQ(plan.answerable, 4u);
  EXPECT_NEAR(plan.eps_per_query, 0.5, 1e-12);
  EXPECT_TRUE(plan.queries[0].predicted_cached);
  EXPECT_EQ(plan.queries[0].budget.epsilon, 0.0);
  EXPECT_NEAR(plan.queries[1].budget.epsilon, 0.5, 1e-12);
  EXPECT_NEAR(plan.projected_spend.epsilon, 1.5, 1e-12);

  // The floor caps stretching: 3 chargeable against eps 0.12 at floor
  // 0.05 covers only 2.
  BudgetPlanner::WorkloadPlan tight =
      planner.Plan("alice", workload, {0.12, 1e-2}, &cache);
  EXPECT_NEAR(tight.eps_per_query, 0.05, 1e-12);
  EXPECT_EQ(tight.answerable, 3u);  // the hit plus two charged
  EXPECT_FALSE(tight.queries[3].answerable);

  // Delta is spent per estimate and bounds affordability on its own.
  BudgetPlanner::WorkloadPlan delta_bound =
      planner.Plan("alice", workload, {10.0, 2e-3}, &cache);
  EXPECT_EQ(delta_bound.answerable, 3u);
}

// --------------------------------------------------- client property suite --

std::unique_ptr<DataProvider> MakeProvider(size_t rows, uint64_t seed) {
  SyntheticConfig cfg;
  cfg.rows = rows;
  cfg.seed = seed;
  cfg.dims = {{"a", 200, DistributionKind::kNormal, 0.5},
              {"b", 100, DistributionKind::kZipf, 1.2}};
  Result<Table> t = GenerateSynthetic(cfg);
  EXPECT_TRUE(t.ok());
  Result<Table> tensor = t->BuildCountTensor({0, 1});
  EXPECT_TRUE(tensor.ok());
  DataProvider::Options popts;
  popts.storage.cluster_capacity = 128;
  popts.storage.layout = ClusterLayout::kShuffled;
  popts.storage.shuffle_seed = seed;
  popts.n_min = 4;
  popts.seed = seed * 3 + 1;
  Result<std::unique_ptr<DataProvider>> p = DataProvider::Create(*tensor, popts);
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

std::vector<std::unique_ptr<DataProvider>> MakeFederation(size_t providers) {
  std::vector<std::unique_ptr<DataProvider>> out;
  for (size_t i = 0; i < providers; ++i) {
    out.push_back(MakeProvider(4000, 901 + 13 * i));
  }
  return out;
}

std::vector<DataProvider*> Ptrs(
    std::vector<std::unique_ptr<DataProvider>>& providers) {
  std::vector<DataProvider*> out;
  for (auto& p : providers) out.push_back(p.get());
  return out;
}

FederationConfig BaseConfig(size_t threads, BatchScheduler scheduler) {
  FederationConfig config;
  config.per_query_budget = {1.0, 1e-3};
  config.sampling_rate = 0.3;
  config.total_xi = 1e6;
  config.total_psi = 1e3;
  config.seed = 626;
  config.num_threads = threads;
  config.scheduler = scheduler;
  return config;
}

/// Mixed workload: 3 fresh misses, 1 exact repeat, 2 full compositions
/// over adjacent earlier purchases, plus one interval no tiling serves.
std::vector<RangeQuery> CacheWorkload() {
  return {Dim0(10, 99), Dim0(100, 149), Dim0(10, 99), Dim0(10, 149),
          Dim0(20, 60), Dim1(30, 80),   Dim0(10, 149)};
}

struct RunOutcome {
  std::vector<double> estimates;
  std::vector<bool> from_cache;
  std::vector<uint32_t> sub_answers;
  PrivacyBudget spent{0.0, 0.0};
  PrivacyBudget saved{0.0, 0.0};
};

RunOutcome RunCacheWorkload(bool enable_cache, size_t threads,
                            BatchScheduler scheduler, bool loopback,
                            bool same_round) {
  auto providers = MakeFederation(2);
  std::vector<std::unique_ptr<RpcProviderServer>> servers;
  FederationClient::Options copts;
  copts.protocol = BaseConfig(threads, scheduler);
  copts.analysts = {{"alice", 1e6, 1e3}};
  copts.enable_cache = enable_cache;
  copts.start_paused = same_round;
  Result<std::unique_ptr<FederationClient>> made = [&] {
    if (!loopback) return FederationClient::Create(Ptrs(providers), copts);
    std::vector<std::string> host_ports;
    for (auto& p : providers) {
      Result<std::unique_ptr<RpcProviderServer>> server =
          RpcProviderServer::Start(p.get());
      EXPECT_TRUE(server.ok()) << server.status().ToString();
      servers.push_back(std::move(server).value());
      host_ports.push_back("127.0.0.1:" +
                           std::to_string(servers.back()->port()));
    }
    Result<std::vector<std::shared_ptr<ProviderEndpoint>>> remote =
        RemoteEndpoint::ConnectAll(host_ports);
    EXPECT_TRUE(remote.ok()) << remote.status().ToString();
    return FederationClient::Create(std::move(remote).value(), copts);
  }();
  RunOutcome out;
  EXPECT_TRUE(made.ok()) << made.status().ToString();
  if (!made.ok()) return out;
  FederationClient* client = made->get();

  std::vector<QueryTicket> tickets;
  for (const RangeQuery& q : CacheWorkload()) {
    QuerySpec spec;
    spec.analyst = "alice";
    spec.query = q;
    tickets.push_back(client->Submit(std::move(spec)));
    // Sequential mode: every query is its own round, so hits always link
    // to terminal entries. Same-round mode batches everything into one
    // round, exercising the deferred (pending same-round purchase) path.
    if (!same_round) EXPECT_TRUE(tickets.back().Wait().ok());
  }
  if (same_round) client->Resume();
  client->WaitIdle();

  for (QueryTicket& ticket : tickets) {
    Result<QueryResponse> resp = ticket.Wait();
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
    out.estimates.push_back(resp.ok() ? resp->estimate : 0.0);
    const TicketStats stats = ticket.Stats();
    out.from_cache.push_back(stats.served_from_cache);
    out.sub_answers.push_back(stats.cache_sub_answers);
  }
  Result<PrivacyBudget> spent = client->ledger().Spent("alice");
  EXPECT_TRUE(spent.ok());
  if (spent.ok()) out.spent = *spent;
  if (enable_cache) {
    Result<PrivacyBudget> saved = client->ledger().Saved("alice");
    EXPECT_TRUE(saved.ok());
    if (saved.ok()) out.saved = *saved;
  }
  return out;
}

TEST(CacheClientTest, HitMissPatternAndZeroBudgetServing) {
  RunOutcome no_cache =
      RunCacheWorkload(false, 1, BatchScheduler::kTaskGraph, false, false);
  RunOutcome cached =
      RunCacheWorkload(true, 1, BatchScheduler::kTaskGraph, false, false);
  ASSERT_EQ(cached.estimates.size(), 7u);

  const std::vector<bool> want_cache = {false, false, true, true,
                                        false, false, true};
  const std::vector<uint32_t> want_subs = {0, 0, 0, 2, 0, 0, 2};
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(cached.from_cache[i], want_cache[i]) << "query " << i;
    EXPECT_EQ(cached.sub_answers[i], want_subs[i]) << "query " << i;
    // Every miss is bit-identical to the cache-less run: session-id
    // reservation keeps the noise streams aligned.
    if (!want_cache[i]) {
      EXPECT_EQ(cached.estimates[i], no_cache.estimates[i]) << "query " << i;
    }
  }
  // Served answers are exactly the purchased bits (post-processing).
  EXPECT_EQ(cached.estimates[2], cached.estimates[0]);
  EXPECT_EQ(cached.estimates[3], cached.estimates[0] + cached.estimates[1]);
  EXPECT_EQ(cached.estimates[6], cached.estimates[3]);
  // Ledger: 4 charged queries; the 3 served ones recorded as savings.
  EXPECT_NEAR(cached.spent.epsilon, 4.0, 1e-12);
  EXPECT_NEAR(cached.saved.epsilon, 3.0, 1e-12);
  EXPECT_NEAR(cached.spent.epsilon + cached.saved.epsilon,
              no_cache.spent.epsilon, 1e-12);
  EXPECT_NEAR(cached.spent.delta + cached.saved.delta, no_cache.spent.delta,
              1e-15);
}

TEST(CacheClientTest, BitIdenticalAcrossPoolsSchedulersRoundsAndLoopback) {
  RunOutcome base =
      RunCacheWorkload(true, 1, BatchScheduler::kTaskGraph, false, false);
  auto expect_same = [&](const RunOutcome& other, const std::string& label) {
    ASSERT_EQ(other.estimates.size(), base.estimates.size()) << label;
    for (size_t i = 0; i < base.estimates.size(); ++i) {
      EXPECT_EQ(other.estimates[i], base.estimates[i])
          << label << " query " << i;
      EXPECT_EQ(other.from_cache[i], base.from_cache[i])
          << label << " query " << i;
    }
    EXPECT_EQ(other.spent.epsilon, base.spent.epsilon) << label;
    EXPECT_EQ(other.saved.epsilon, base.saved.epsilon) << label;
  };
  for (size_t threads : {1u, 2u, 8u}) {
    for (bool same_round : {false, true}) {
      expect_same(RunCacheWorkload(true, threads, BatchScheduler::kTaskGraph,
                                   false, same_round),
                  "graph pool=" + std::to_string(threads) +
                      (same_round ? " one-round" : " sequential"));
      expect_same(RunCacheWorkload(true, threads,
                                   BatchScheduler::kPhaseBarrier, false,
                                   same_round),
                  "barrier pool=" + std::to_string(threads) +
                      (same_round ? " one-round" : " sequential"));
    }
  }
  expect_same(
      RunCacheWorkload(true, 2, BatchScheduler::kTaskGraph, true, true),
      "loopback one-round");
}

TEST(CacheClientTest, PartialCompositionChargesExactlyTheRemainder) {
  auto providers = MakeFederation(2);
  FederationClient::Options copts;
  copts.protocol = BaseConfig(2, BatchScheduler::kTaskGraph);
  copts.analysts = {{"alice", 1e6, 1e3}};
  copts.enable_cache = true;
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(Ptrs(providers), copts);
  ASSERT_TRUE(client.ok());
  auto run = [&](const RangeQuery& q) {
    QuerySpec spec;
    spec.analyst = "alice";
    spec.query = q;
    return (*client)->Submit(std::move(spec));
  };

  QueryTicket first = run(Dim0(10, 99));
  Result<QueryResponse> r1 = first.Wait();
  ASSERT_TRUE(r1.ok());

  // [10,149] reuses the cached [10,99] and buys only [100,149]: one full
  // per-query budget for the remainder, nothing for the reused part.
  QueryTicket second = run(Dim0(10, 149));
  Result<QueryResponse> r2 = second.Wait();
  ASSERT_TRUE(r2.ok());
  const TicketStats s2 = second.Stats();
  EXPECT_FALSE(s2.served_from_cache);
  EXPECT_EQ(s2.cache_sub_answers, 1u);
  (*client)->WaitIdle();
  Result<PrivacyBudget> spent = (*client)->ledger().Spent("alice");
  ASSERT_TRUE(spent.ok());
  EXPECT_NEAR(spent->epsilon, 2.0, 1e-12);  // two purchases, no more

  // The purchased remainder completes later repeats for free, bitwise.
  QueryTicket third = run(Dim0(10, 149));
  Result<QueryResponse> r3 = third.Wait();
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(third.Stats().served_from_cache);
  EXPECT_EQ(third.Stats().cache_sub_answers, 2u);
  EXPECT_EQ(r3->estimate, r2->estimate);
  EXPECT_EQ(r3->stderr_estimate, r2->stderr_estimate);
  // Variances add over disjoint sub-ranges: the composed error exceeds
  // the reused part's alone.
  EXPECT_GT(r2->stderr_estimate, r1->stderr_estimate);
  (*client)->WaitIdle();
  Result<PrivacyBudget> spent_after = (*client)->ledger().Spent("alice");
  ASSERT_TRUE(spent_after.ok());
  EXPECT_NEAR(spent_after->epsilon, 2.0, 1e-12);

  // The planner sees the index: an exact repeat plans as free.
  Result<BudgetPlanner::WorkloadPlan> plan =
      (*client)->PlanWorkload("alice", {Dim0(10, 99), Dim0(0, 9)});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->predicted_hits, 1u);
}

/// Endpoint wrapper that, when armed, parks the next Cover call until
/// released — pins a query at kSummaryPublished for cancellation tests.
class ArmableGateEndpoint : public ProviderEndpoint {
 public:
  explicit ArmableGateEndpoint(std::shared_ptr<ProviderEndpoint> inner)
      : inner_(std::move(inner)) {}

  const EndpointInfo& info() const override { return inner_->info(); }

  Result<CoverReply> Cover(const CoverRequest& request) override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (armed_) {
        armed_ = false;
        entered_ = true;
        cv_.notify_all();
        cv_.wait(lock, [&] { return released_; });
      }
    }
    return inner_->Cover(request);
  }
  Result<SummaryReply> PublishSummary(const SummaryRequest& r) override {
    return inner_->PublishSummary(r);
  }
  Result<EstimateReply> Approximate(const ApproximateRequest& r) override {
    return inner_->Approximate(r);
  }
  Result<EstimateReply> ExactAnswer(const ExactAnswerRequest& r) override {
    return inner_->ExactAnswer(r);
  }
  Result<ExactScanReply> ExactFullScan(const ExactScanRequest& r) override {
    return inner_->ExactFullScan(r);
  }
  void EndQuery(uint64_t id) override { inner_->EndQuery(id); }

  void Arm() {
    std::lock_guard<std::mutex> lock(mutex_);
    armed_ = true;
    entered_ = false;
    released_ = false;
  }
  void WaitEntered() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return entered_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::shared_ptr<ProviderEndpoint> inner_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool armed_ = false;
  bool entered_ = false;
  bool released_ = false;
};

TEST(CacheClientTest, CancelledRemainderLeavesCacheConsistent) {
  auto providers = MakeFederation(2);
  Result<std::vector<std::shared_ptr<ProviderEndpoint>>> inner =
      MakeInProcessEndpoints(Ptrs(providers));
  ASSERT_TRUE(inner.ok());
  auto gate = std::make_shared<ArmableGateEndpoint>((*inner)[0]);
  std::vector<std::shared_ptr<ProviderEndpoint>> endpoints = {gate,
                                                              (*inner)[1]};
  FederationClient::Options copts;
  copts.protocol = BaseConfig(2, BatchScheduler::kTaskGraph);
  copts.analysts = {{"alice", 1e6, 1e3}};
  copts.enable_cache = true;
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(endpoints, copts);
  ASSERT_TRUE(client.ok());
  auto submit = [&](const RangeQuery& q) {
    QuerySpec spec;
    spec.analyst = "alice";
    spec.query = q;
    return (*client)->Submit(std::move(spec));
  };

  QueryTicket base = submit(Dim0(10, 99));
  ASSERT_TRUE(base.Wait().ok());
  (*client)->WaitIdle();

  // Cancel [10,149] while its remainder purchase [100,149] is mid-query:
  // the sampling/estimate shares refund and the poisoned purchase must
  // not serve anyone later.
  gate->Arm();
  QueryTicket doomed = submit(Dim0(10, 149));
  gate->WaitEntered();
  EXPECT_TRUE(doomed.Cancel());
  gate->Release();
  Result<QueryResponse> cancelled = doomed.Wait();
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  (*client)->WaitIdle();
  const FederationConfig& config = copts.protocol;
  const TicketStats doomed_stats = doomed.Stats();
  EXPECT_NEAR(doomed_stats.refunded.epsilon,
              (config.split.hp_sampling + config.split.hp_estimate) *
                  config.per_query_budget.epsilon,
              1e-12);

  // The invalidated remainder is re-purchased, not linked: the repeat
  // composes again, succeeds, and charges one budget.
  QueryTicket retry = submit(Dim0(10, 149));
  Result<QueryResponse> retried = retry.Wait();
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_FALSE(retry.Stats().served_from_cache);
  EXPECT_EQ(retry.Stats().cache_sub_answers, 1u);
  (*client)->WaitIdle();
  ASSERT_NE((*client)->cache(), nullptr);
  EXPECT_EQ((*client)->cache()->stats().invalidated, 1u);

  // And now the completed purchase serves repeats for free again.
  QueryTicket served = submit(Dim0(10, 149));
  ASSERT_TRUE(served.Wait().ok());
  EXPECT_TRUE(served.Stats().served_from_cache);
  EXPECT_EQ(served.Wait()->estimate, retried->estimate);
}

TEST(CacheClientTest, PlanHorizonKnobStretchesPerQueryCharge) {
  auto providers = MakeFederation(2);
  FederationClient::Options copts;
  copts.protocol = BaseConfig(1, BatchScheduler::kTaskGraph);
  // Grant eps 2.0: at horizon 4 the planner charges 0.5 per query.
  copts.analysts = {{"alice", 2.0, 1e3}};
  copts.enable_cache = true;
  copts.plan_horizon = 4;
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(Ptrs(providers), copts);
  ASSERT_TRUE(client.ok());
  QuerySpec spec;
  spec.analyst = "alice";
  spec.query = Dim0(10, 99);
  QueryTicket ticket = (*client)->Submit(std::move(spec));
  ASSERT_TRUE(ticket.Wait().ok());
  (*client)->WaitIdle();
  Result<PrivacyBudget> spent = (*client)->ledger().Spent("alice");
  ASSERT_TRUE(spent.ok());
  EXPECT_NEAR(spent->epsilon, 0.5, 1e-12);

  // An explicit override beats the knob.
  QuerySpec fixed;
  fixed.analyst = "alice";
  fixed.query = Dim0(100, 149);
  fixed.budget = {1.0, 1e-3};
  QueryTicket t2 = (*client)->Submit(std::move(fixed));
  ASSERT_TRUE(t2.Wait().ok());
  (*client)->WaitIdle();
  spent = (*client)->ledger().Spent("alice");
  ASSERT_TRUE(spent.ok());
  EXPECT_NEAR(spent->epsilon, 1.5, 1e-12);
}

}  // namespace
}  // namespace fedaqp
