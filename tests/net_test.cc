// Tests for the byte-accurate network simulator.

#include <gtest/gtest.h>

#include "net/sim_network.h"

namespace fedaqp {
namespace {

TEST(SimNetworkTest, TransferTimeIsLatencyPlusSerialization) {
  NetworkOptions opts;
  opts.latency_seconds = 0.001;
  opts.bandwidth_bytes_per_second = 1000.0;
  SimNetwork net(opts);
  EXPECT_DOUBLE_EQ(net.TransferSeconds(0), 0.001);
  EXPECT_DOUBLE_EQ(net.TransferSeconds(1000), 1.001);
}

TEST(SimNetworkTest, SendAccumulates) {
  SimNetwork net;
  net.Send(100);
  net.Send(200);
  EXPECT_EQ(net.stats().messages, 2u);
  EXPECT_EQ(net.stats().bytes, 300u);
  EXPECT_GT(net.stats().seconds, 0.0);
}

TEST(SimNetworkTest, RoundCostsSlowestLink) {
  NetworkOptions opts;
  opts.latency_seconds = 0.0;
  opts.bandwidth_bytes_per_second = 100.0;
  SimNetwork net(opts);
  net.Round({100, 200, 400});
  // Parallel links: elapsed = 400/100 = 4s, but all bytes counted.
  EXPECT_DOUBLE_EQ(net.stats().seconds, 4.0);
  EXPECT_EQ(net.stats().bytes, 700u);
  EXPECT_EQ(net.stats().messages, 3u);
}

TEST(SimNetworkTest, UniformRound) {
  NetworkOptions opts;
  opts.latency_seconds = 0.5;
  opts.bandwidth_bytes_per_second = 1e9;
  SimNetwork net(opts);
  net.UniformRound(4, 8);
  EXPECT_EQ(net.stats().messages, 4u);
  EXPECT_EQ(net.stats().bytes, 32u);
  EXPECT_NEAR(net.stats().seconds, 0.5, 1e-6);  // one parallel round
}

TEST(SimNetworkTest, EmptyRoundsAreFree) {
  SimNetwork net;
  net.Round({});
  net.UniformRound(0, 100);
  EXPECT_EQ(net.stats().messages, 0u);
  EXPECT_EQ(net.stats().seconds, 0.0);
}

TEST(SimNetworkTest, ResetClears) {
  SimNetwork net;
  net.Send(10);
  net.Reset();
  EXPECT_EQ(net.stats().messages, 0u);
  EXPECT_EQ(net.stats().bytes, 0u);
  EXPECT_EQ(net.stats().seconds, 0.0);
}

TEST(SimNetworkTest, TrafficStatsAddition) {
  TrafficStats a{2, 100, 0.5};
  TrafficStats b{3, 50, 0.25};
  a += b;
  EXPECT_EQ(a.messages, 5u);
  EXPECT_EQ(a.bytes, 150u);
  EXPECT_DOUBLE_EQ(a.seconds, 0.75);
}

}  // namespace
}  // namespace fedaqp
