// Wire-codec robustness suite: round-trip property tests over randomized
// protocol messages, adversarial frames (truncated, corrupt, hostile
// lengths) that must fail with Status instead of crashing or
// over-reading, and the regression pinning SimNetwork's charged sizes to
// the codec's framed sizes.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "federation/orchestrator.h"
#include "rpc/wire.h"
#include "workload/datagen.h"

namespace fedaqp {
namespace {

// ------------------------------------------------------------ round trips --

RangeQuery RandomQuery(Rng* rng) {
  std::vector<DimRange> ranges;
  size_t n = rng->UniformU64(4);
  for (size_t i = 0; i < n; ++i) {
    DimRange r;
    r.dim_index = rng->UniformU64(8);
    r.lo = rng->UniformInt(-1000, 1000);
    r.hi = rng->UniformInt(-1000, 1000);
    ranges.push_back(r);
  }
  return RangeQuery(
      static_cast<Aggregation>(rng->UniformU64(3)), std::move(ranges));
}

ProviderWorkStats RandomWork(Rng* rng) {
  ProviderWorkStats w;
  w.clusters_scanned = rng->NextU64() >> 16;
  w.rows_scanned = rng->NextU64() >> 16;
  w.metadata_lookups = rng->NextU64() >> 16;
  w.compute_seconds = rng->UniformDouble() * 1e3;
  return w;
}

LocalEstimate RandomEstimate(Rng* rng) {
  LocalEstimate e;
  e.estimate = rng->Normal() * 1e6;
  e.variance = rng->UniformDouble() * 1e9;
  e.sensitivity = rng->UniformDouble() * 1e4;
  e.exact = rng->Bernoulli(0.5);
  e.noised = rng->Bernoulli(0.5);
  e.spent = PrivacyBudget{rng->UniformDouble(), rng->UniformDouble() * 1e-3};
  e.work = RandomWork(rng);
  return e;
}

/// Bit-exact round-trip check: decode(encode(v)) re-encodes to the same
/// bytes (catches every field drop/reorder and any lossy conversion,
/// doubles included, without needing operator== on the structs).
template <typename T>
void ExpectRoundTrip(const T& v, void (*encode)(const T&, ByteWriter*),
                     Result<T> (*decode)(ByteReader*)) {
  ByteWriter w;
  encode(v, &w);
  ByteReader r(w.bytes());
  Result<T> decoded = decode(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(r.AtEnd());
  ByteWriter w2;
  encode(*decoded, &w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
}

TEST(RpcWireTest, RandomizedMessagesRoundTripBitExact) {
  Rng rng(0xc0dec);
  for (int i = 0; i < 200; ++i) {
    CoverRequest cover_req;
    cover_req.query_id = rng.NextU64();
    cover_req.session_nonce = rng.NextU64();
    cover_req.query = RandomQuery(&rng);
    ExpectRoundTrip(cover_req, EncodeCoverRequest, DecodeCoverRequest);

    CoverReply cover_reply;
    cover_reply.num_covering_clusters = rng.NextU64() >> 8;
    cover_reply.should_approximate = rng.Bernoulli(0.5);
    cover_reply.work = RandomWork(&rng);
    ExpectRoundTrip(cover_reply, EncodeCoverReply, DecodeCoverReply);

    SummaryRequest sum_req{rng.NextU64(), rng.UniformDouble()};
    ExpectRoundTrip(sum_req, EncodeSummaryRequest, DecodeSummaryRequest);

    SummaryReply sum_reply;
    sum_reply.summary.noisy_avg_r = rng.Normal() * 100;
    sum_reply.summary.noisy_n_q = rng.Normal() * 1000;
    sum_reply.summary.epsilon_spent = rng.UniformDouble();
    sum_reply.summary.work = RandomWork(&rng);
    ExpectRoundTrip(sum_reply, EncodeSummaryReply, DecodeSummaryReply);

    ApproximateRequest approx_req;
    approx_req.query_id = rng.NextU64();
    approx_req.sample_size = rng.NextU64() >> 32;
    approx_req.eps_sampling = rng.UniformDouble();
    approx_req.eps_estimate = rng.UniformDouble();
    approx_req.delta = rng.UniformDouble() * 1e-3;
    approx_req.add_noise = rng.Bernoulli(0.5);
    ExpectRoundTrip(approx_req, EncodeApproximateRequest,
                    DecodeApproximateRequest);

    ExactAnswerRequest exact_req;
    exact_req.query_id = rng.NextU64();
    exact_req.eps_estimate = rng.UniformDouble();
    exact_req.add_noise = rng.Bernoulli(0.5);
    ExpectRoundTrip(exact_req, EncodeExactAnswerRequest,
                    DecodeExactAnswerRequest);

    EstimateReply est_reply{RandomEstimate(&rng)};
    ExpectRoundTrip(est_reply, EncodeEstimateReply, DecodeEstimateReply);

    ExactScanRequest scan_req{RandomQuery(&rng)};
    ExpectRoundTrip(scan_req, EncodeExactScanRequest, DecodeExactScanRequest);

    ExactScanReply scan_reply;
    scan_reply.value = rng.Normal() * 1e7;
    scan_reply.work = RandomWork(&rng);
    ExpectRoundTrip(scan_reply, EncodeExactScanReply, DecodeExactScanReply);

    ExpectRoundTrip(EndQueryRequest{rng.NextU64()}, EncodeEndQueryRequest,
                    DecodeEndQueryRequest);
  }
}

TEST(RpcWireTest, EndpointInfoRoundTripsThroughSchemaValidation) {
  EndpointInfo info;
  info.name = "provider-7";
  ASSERT_TRUE(info.schema.AddDimension("age", 100).ok());
  ASSERT_TRUE(info.schema.AddDimension("income", 50).ok());
  info.cluster_capacity = 4096;
  info.n_min = 16;
  ByteWriter w;
  EncodeEndpointInfo(info, &w);
  ByteReader r(w.bytes());
  Result<EndpointInfo> decoded = DecodeEndpointInfo(&r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(decoded->name, info.name);
  EXPECT_TRUE(decoded->schema == info.schema);
  EXPECT_EQ(decoded->cluster_capacity, info.cluster_capacity);
  EXPECT_EQ(decoded->n_min, info.n_min);
}

TEST(RpcWireTest, StatusPayloadRoundTrips) {
  ByteWriter w;
  EncodeStatusPayload(Status::BudgetExhausted("xi gone"), &w);
  ByteReader r(w.bytes());
  Status decoded = Status::OK();
  ASSERT_TRUE(DecodeStatusPayload(&r, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kBudgetExhausted);
  EXPECT_EQ(decoded.message(), "xi gone");
}

// ------------------------------------------------------ adversarial input --

/// A valid frame around an arbitrary payload, for corrupting.
std::vector<uint8_t> ValidFrame() {
  ByteWriter payload;
  EncodeSummaryRequest(SummaryRequest{42, 0.5}, &payload);
  return EncodeFrame(RpcMethod::kPublishSummary, payload);
}

Result<FrameHeader> ParseHeader(const std::vector<uint8_t>& frame) {
  ByteReader r(frame.data(), std::min(frame.size(), kFrameHeaderBytes));
  return DecodeFrameHeader(&r);
}

TEST(RpcWireTest, BadMagicIsRejected) {
  std::vector<uint8_t> frame = ValidFrame();
  frame[0] ^= 0xff;
  Result<FrameHeader> header = ParseHeader(frame);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
}

TEST(RpcWireTest, WrongVersionIsRejected) {
  std::vector<uint8_t> frame = ValidFrame();
  frame[4] = kWireVersion + 1;
  Result<FrameHeader> header = ParseHeader(frame);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
}

TEST(RpcWireTest, UnknownMethodIdIsRejected) {
  std::vector<uint8_t> frame = ValidFrame();
  for (uint8_t bad : {uint8_t{0}, uint8_t{14}, uint8_t{0xff}}) {
    frame[5] = bad;
    Result<FrameHeader> header = ParseHeader(frame);
    ASSERT_FALSE(header.ok()) << "method id " << int(bad);
    EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
  }
  // kError itself is a legal *frame* (reply-only; the server refuses it
  // at dispatch, not at the header).
  frame[5] = static_cast<uint8_t>(RpcMethod::kError);
  EXPECT_TRUE(ParseHeader(frame).ok());
  // So is kBatch (the doorbell container).
  frame[5] = static_cast<uint8_t>(RpcMethod::kBatch);
  EXPECT_TRUE(ParseHeader(frame).ok());
  // The ledger-service methods fill the former 9..13 gap.
  for (RpcMethod m : {RpcMethod::kLedgerRegister, RpcMethod::kLedgerCharge,
                      RpcMethod::kLedgerRefund, RpcMethod::kLedgerSaving,
                      RpcMethod::kLedgerQuery}) {
    frame[5] = static_cast<uint8_t>(m);
    EXPECT_TRUE(ParseHeader(frame).ok()) << "method id " << int(frame[5]);
  }
}

TEST(RpcWireTest, OversizedPayloadLengthIsRejected) {
  std::vector<uint8_t> frame = ValidFrame();
  uint32_t huge = kMaxFramePayloadBytes + 1;
  std::memcpy(frame.data() + 6, &huge, sizeof(huge));
  Result<FrameHeader> header = ParseHeader(frame);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kOutOfRange);
}

TEST(RpcWireTest, TruncatedHeaderIsRejected) {
  std::vector<uint8_t> frame = ValidFrame();
  for (size_t len = 0; len < kFrameHeaderBytes; ++len) {
    ByteReader r(frame.data(), len);
    Result<FrameHeader> header = DecodeFrameHeader(&r);
    ASSERT_FALSE(header.ok()) << "header length " << len;
    EXPECT_EQ(header.status().code(), StatusCode::kOutOfRange);
  }
}

TEST(RpcWireTest, TruncatedPayloadsNeverCrashOrOverRead) {
  // Every proper prefix of every message must decode to an error.
  Rng rng(0xbad);
  for (int i = 0; i < 50; ++i) {
    ByteWriter w;
    CoverRequest req;
    req.query_id = rng.NextU64();
    req.session_nonce = rng.NextU64();
    req.query = RandomQuery(&rng);
    EncodeCoverRequest(req, &w);
    for (size_t len = 0; len < w.size(); ++len) {
      ByteReader r(w.bytes().data(), len);
      Result<CoverRequest> decoded = DecodeCoverRequest(&r);
      // Prefixes that happen to decode fewer ranges are caught by the
      // frame layer's ExpectConsumed; all others must error here.
      if (decoded.ok()) continue;
      EXPECT_TRUE(decoded.status().code() == StatusCode::kOutOfRange ||
                  decoded.status().code() == StatusCode::kInvalidArgument ||
                  decoded.status().code() == StatusCode::kProtocolError)
          << decoded.status().ToString();
    }
  }
  ByteWriter w;
  EncodeEstimateReply(EstimateReply{RandomEstimate(&rng)}, &w);
  for (size_t len = 0; len < w.size(); ++len) {
    ByteReader r(w.bytes().data(), len);
    EXPECT_FALSE(DecodeEstimateReply(&r).ok());
  }
}

TEST(RpcWireTest, TrailingPayloadBytesAreRejected) {
  ByteWriter w;
  EncodeSummaryRequest(SummaryRequest{7, 0.25}, &w);
  w.PutU8(0);  // one stray byte
  ByteReader r(w.bytes());
  Result<SummaryRequest> decoded = DecodeSummaryRequest(&r);
  ASSERT_TRUE(decoded.ok());
  Status consumed = ExpectConsumed(r);
  EXPECT_EQ(consumed.code(), StatusCode::kInvalidArgument);
}

TEST(RpcWireTest, HostileElementCountsDoNotAllocate) {
  // A query claiming 2^32-1 ranges inside a tiny payload must be refused
  // before any reserve() (this would previously try an ~80 GB reserve).
  ByteWriter w;
  w.PutU8(0);            // aggregation = count
  w.PutU32(0xffffffff);  // range count
  ByteReader r(w.bytes());
  Result<RangeQuery> q = RangeQuery::Deserialize(&r);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kOutOfRange);

  // Same for a schema with a hostile dimension count.
  ByteWriter s;
  s.PutU32(0x7fffffff);
  ByteReader sr(s.bytes());
  EXPECT_FALSE(DecodeSchema(&sr).ok());
}

TEST(RpcWireTest, CorruptBoolAndStatusBytesAreRejected) {
  ByteWriter w;
  EncodeExactAnswerRequest(ExactAnswerRequest{1, 0.5, true}, &w);
  std::vector<uint8_t> bytes = w.bytes();
  bytes.back() = 2;  // add_noise byte must be 0/1
  ByteReader r(bytes.data(), bytes.size());
  Result<ExactAnswerRequest> decoded = DecodeExactAnswerRequest(&r);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);

  ByteWriter sw;
  sw.PutU8(0);  // an error frame carrying "OK" is corrupt
  sw.PutString("fine");
  ByteReader sr(sw.bytes());
  Status out = Status::OK();
  EXPECT_FALSE(DecodeStatusPayload(&sr, &out).ok());
}

TEST(RpcWireTest, CorruptSchemaIsRejectedNotConstructed) {
  ByteWriter w;
  w.PutU32(2);
  w.PutString("age");
  w.PutI64(0);  // non-positive domain
  w.PutString("age");
  w.PutI64(5);
  ByteReader r(w.bytes());
  EXPECT_FALSE(DecodeSchema(&r).ok());
}

// ------------------------------------------- charged sizes == codec sizes --

TEST(RpcWireTest, WireSizeMatchesEncodedFrameForEveryMessageType) {
  Rng rng(0x512e);
  for (int i = 0; i < 20; ++i) {
    CoverRequest cover_req;
    cover_req.query_id = rng.NextU64();
    cover_req.session_nonce = rng.NextU64();
    cover_req.query = RandomQuery(&rng);
    {
      ByteWriter w;
      EncodeCoverRequest(cover_req, &w);
      EXPECT_EQ(WireSize(cover_req),
                EncodeFrame(RpcMethod::kCover, w).size());
    }
    {
      CoverReply v;
      v.work = RandomWork(&rng);
      ByteWriter w;
      EncodeCoverReply(v, &w);
      EXPECT_EQ(WireSize(v), EncodeFrame(RpcMethod::kCover, w).size());
      // Size must be value-independent (the orchestrator charges a
      // default-constructed instance).
      EXPECT_EQ(WireSize(v), WireSize(CoverReply{}));
    }
    {
      EstimateReply v{RandomEstimate(&rng)};
      ByteWriter w;
      EncodeEstimateReply(v, &w);
      EXPECT_EQ(WireSize(v), EncodeFrame(RpcMethod::kApproximate, w).size());
      EXPECT_EQ(WireSize(v), WireSize(EstimateReply{}));
    }
    {
      SummaryReply v;
      v.summary.work = RandomWork(&rng);
      EXPECT_EQ(WireSize(v), WireSize(SummaryReply{}));
    }
    {
      ApproximateRequest v;
      v.sample_size = rng.NextU64();
      EXPECT_EQ(WireSize(v), WireSize(ApproximateRequest{}));
    }
  }
  ByteWriter empty;
  EXPECT_EQ(kEndQueryAckWireSize,
            EncodeFrame(RpcMethod::kEndQuery, empty).size());
}

std::unique_ptr<DataProvider> MakeProvider(size_t rows, uint64_t seed,
                                           size_t n_min = 4) {
  SyntheticConfig cfg;
  cfg.rows = rows;
  cfg.seed = seed;
  cfg.dims = {{"a", 200, DistributionKind::kNormal, 0.5},
              {"b", 100, DistributionKind::kZipf, 1.2}};
  Result<Table> t = GenerateSynthetic(cfg);
  EXPECT_TRUE(t.ok());
  Result<Table> tensor = t->BuildCountTensor({0, 1});
  EXPECT_TRUE(tensor.ok());
  DataProvider::Options popts;
  popts.storage.cluster_capacity = 128;
  popts.storage.layout = ClusterLayout::kShuffled;
  popts.storage.shuffle_seed = seed;
  popts.n_min = n_min;
  popts.seed = seed * 3 + 1;
  Result<std::unique_ptr<DataProvider>> p = DataProvider::Create(*tensor, popts);
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

TEST(RpcWireTest, OrchestratorChargesExactlyTheCodecSizes) {
  // Regression for the unified accounting: SimNetwork's per-query byte
  // count must equal the sum of the framed protocol messages, computed
  // from the codec — for both the approximate and the exact-bypass path.
  std::unique_ptr<DataProvider> a = MakeProvider(20000, 7);
  std::unique_ptr<DataProvider> b = MakeProvider(20000, 9);
  FederationConfig config;
  config.sampling_rate = 0.3;
  config.total_xi = 1e6;
  config.total_psi = 1e3;
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::Create({a.get(), b.get()}, config);
  ASSERT_TRUE(orch.ok());

  const size_t n = 2;
  for (const RangeQuery& q :
       {RangeQueryBuilder(Aggregation::kSum).Where(0, 20, 180).Build(),
        RangeQueryBuilder(Aggregation::kCount).Where(0, 5, 6).Build()}) {
    std::vector<size_t> phase2(2);
    {
      ProviderWorkStats work;
      phase2[0] = a->ShouldApproximate(a->Cover(q, &work))
                      ? WireSize(ApproximateRequest{})
                      : WireSize(ExactAnswerRequest{});
      phase2[1] = b->ShouldApproximate(b->Cover(q, &work))
                      ? WireSize(ApproximateRequest{})
                      : WireSize(ExactAnswerRequest{});
    }
    Result<QueryResponse> resp = orch->Execute(q);
    ASSERT_TRUE(resp.ok());
    uint64_t expected =
        n * (WireSize(CoverRequest{1, 1, q}) + WireSize(CoverReply{}) +
             WireSize(SummaryRequest{}) + WireSize(SummaryReply{}) +
             WireSize(EstimateReply{}) + WireSize(EndQueryRequest{}) +
             kEndQueryAckWireSize) +
        phase2[0] + phase2[1];
    EXPECT_EQ(resp->breakdown.network_bytes, expected)
        << q.ToString(orch->schema());
    EXPECT_EQ(resp->breakdown.network_messages, 8 * n);
  }

  Result<QueryResponse> exact = orch->ExecuteExact(
      RangeQueryBuilder(Aggregation::kSum).Where(0, 20, 180).Build());
  ASSERT_TRUE(exact.ok());
  uint64_t expected_exact =
      n * (WireSize(ExactScanRequest{
               RangeQueryBuilder(Aggregation::kSum).Where(0, 20, 180).Build()}) +
           WireSize(ExactScanReply{}));
  EXPECT_EQ(exact->breakdown.network_bytes, expected_exact);
}

}  // namespace
}  // namespace fedaqp
