// Tests for the paper-Sec.-7 extensions: SUM_SQUARES aggregation, derived
// AVG/VAR/STDDEV via sequential composition, and private GROUP-BY.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/math.h"
#include "federation/derived.h"
#include "workload/datagen.h"

namespace fedaqp {
namespace {

class DerivedFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig cfg;
    cfg.rows = 30000;
    cfg.seed = 1234;
    cfg.dims = {{"a", 40, DistributionKind::kNormal, 0.5},
                {"b", 12, DistributionKind::kZipf, 1.2},
                {"c", 25, DistributionKind::kUniform, 0.0}};
    Result<std::vector<Table>> parts =
        GenerateFederatedTensors(cfg, {0, 1, 2}, 3);
    ASSERT_TRUE(parts.ok());
    for (size_t i = 0; i < parts->size(); ++i) {
      DataProvider::Options popts;
      popts.storage.cluster_capacity = 256;
      popts.storage.layout = ClusterLayout::kShuffled;
      popts.n_min = 4;
      popts.seed = 77 + i;
      popts.measure_cap = 64;  // realistic cell-measure bound for this data
      Result<std::unique_ptr<DataProvider>> p =
          DataProvider::Create((*parts)[i], popts);
      ASSERT_TRUE(p.ok());
      providers_.push_back(std::move(p).value());
    }
    FederationConfig config;
    config.per_query_budget = {2.0, 1e-3};
    config.sampling_rate = 0.4;
    config.total_xi = 1e6;
    config.total_psi = 1e3;
    std::vector<DataProvider*> ptrs;
    for (auto& p : providers_) ptrs.push_back(p.get());
    Result<QueryOrchestrator> orch = QueryOrchestrator::Create(ptrs, config);
    ASSERT_TRUE(orch.ok());
    orchestrator_ = std::make_unique<QueryOrchestrator>(std::move(orch).value());
  }

  int64_t Truth(const RangeQuery& q) {
    int64_t total = 0;
    for (auto& p : providers_) total += p->store().EvaluateExact(q);
    return total;
  }

  std::vector<std::unique_ptr<DataProvider>> providers_;
  std::unique_ptr<QueryOrchestrator> orchestrator_;
};

// ------------------------------------------------------------ SumSquares --

TEST_F(DerivedFixture, SumSquaresExactSemantics) {
  RangeQuery q = RangeQueryBuilder(Aggregation::kSumSquares)
                     .Where(0, 5, 35)
                     .Build();
  // Brute force over every cluster row.
  int64_t expected = 0;
  for (auto& p : providers_) {
    for (const auto& c : p->store().clusters()) {
      for (size_t i = 0; i < c.num_rows(); ++i) {
        if (c.at(i, 0) >= 5 && c.at(i, 0) <= 35) {
          expected += c.measure(i) * c.measure(i);
        }
      }
    }
  }
  EXPECT_EQ(Truth(q), expected);
  // Jensen: sum of squares >= sum when measures >= 1.
  RangeQuery sum_q = RangeQueryBuilder(Aggregation::kSum).Where(0, 5, 35).Build();
  EXPECT_GE(Truth(q), Truth(sum_q));
}

TEST_F(DerivedFixture, SumSquaresSerializationRoundTrip) {
  RangeQuery q = RangeQueryBuilder(Aggregation::kSumSquares)
                     .Where(1, 0, 5)
                     .Build();
  ByteWriter w;
  q.Serialize(&w);
  ByteReader r(w.bytes());
  Result<RangeQuery> back = RangeQuery::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->aggregation(), Aggregation::kSumSquares);
}

TEST_F(DerivedFixture, UnitChangeOrdering) {
  DataProvider* p = providers_[0].get();
  EXPECT_DOUBLE_EQ(p->UnitChange(Aggregation::kCount), 1.0);
  EXPECT_DOUBLE_EQ(p->UnitChange(Aggregation::kSum),
                   p->options().sum_sensitivity_bound);
  // One individual can swing a sum of squares by up to 2*cap*B + B^2.
  double b = p->options().sum_sensitivity_bound;
  EXPECT_DOUBLE_EQ(p->UnitChange(Aggregation::kSumSquares),
                   2.0 * p->options().measure_cap * b + b * b);
}

// --------------------------------------------------------------- Derived --

TEST_F(DerivedFixture, PrivateAverageTracksTruth) {
  RangeQuery range = RangeQueryBuilder(Aggregation::kSum)
                         .Where(0, 5, 35)
                         .Build();
  double true_sum = static_cast<double>(
      Truth(RangeQueryBuilder(Aggregation::kSum).Where(0, 5, 35).Build()));
  double true_count = static_cast<double>(
      Truth(RangeQueryBuilder(Aggregation::kCount).Where(0, 5, 35).Build()));
  double true_avg = true_sum / true_count;
  RunningStats st;
  for (int rep = 0; rep < 10; ++rep) {
    Result<DerivedResult> avg = PrivateAverage(orchestrator_.get(), range);
    ASSERT_TRUE(avg.ok());
    st.Add(avg->value);
    // Two underlying queries' budgets.
    EXPECT_DOUBLE_EQ(avg->spent.epsilon, 2.0 * 2.0);
  }
  EXPECT_LT(RelativeError(true_avg, st.mean()), 0.25);
}

TEST_F(DerivedFixture, PrivateVarianceIsNonNegativeAndCharged) {
  RangeQuery range = RangeQueryBuilder(Aggregation::kSum)
                         .Where(0, 0, 39)
                         .Build();
  Result<DerivedResult> var = PrivateVariance(orchestrator_.get(), range);
  ASSERT_TRUE(var.ok());
  EXPECT_GE(var->value, 0.0);
  EXPECT_DOUBLE_EQ(var->spent.epsilon, 3.0 * 2.0);  // three queries at eps=2
  Result<DerivedResult> sd = PrivateStdDev(orchestrator_.get(), range);
  ASSERT_TRUE(sd.ok());
  EXPECT_GE(sd->value, 0.0);
  EXPECT_NEAR(sd->value * sd->value, sd->value * sd->value, 1e-9);
}

TEST_F(DerivedFixture, DerivedQueriesConsumeAccountantBudget) {
  size_t before = orchestrator_->accountant().num_charges();
  RangeQuery range = RangeQueryBuilder(Aggregation::kSum)
                         .Where(0, 10, 30)
                         .Build();
  ASSERT_TRUE(PrivateAverage(orchestrator_.get(), range).ok());
  EXPECT_EQ(orchestrator_->accountant().num_charges(), before + 2);
}

// --------------------------------------------------------------- GroupBy --

TEST_F(DerivedFixture, GroupByCoversDomainAndSumsToTotal) {
  RangeQuery base = RangeQueryBuilder(Aggregation::kSum)
                        .Where(0, 0, 39)
                        .Build();
  GroupByOptions opts;
  opts.group_dim = 1;  // |b| = 12 buckets
  Result<GroupByResult> grouped =
      PrivateGroupBy(orchestrator_.get(), base, opts);
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->buckets.size(), 12u);
  // Bucket estimates should roughly partition the range total.
  double bucket_total = 0.0;
  for (const auto& b : grouped->buckets) bucket_total += b.estimate;
  double truth = static_cast<double>(Truth(base));
  EXPECT_LT(RelativeError(truth, bucket_total), 0.5);
  // Parallel composition: the group-by costs one per-query budget.
  EXPECT_DOUBLE_EQ(grouped->spent.epsilon, 2.0);
}

TEST_F(DerivedFixture, GroupByHonoursExplicitInterval) {
  RangeQuery base = RangeQueryBuilder(Aggregation::kCount)
                        .Where(0, 0, 39)
                        .Build();
  GroupByOptions opts;
  opts.group_dim = 1;
  opts.group_lo = 2;
  opts.group_hi = 5;
  Result<GroupByResult> grouped =
      PrivateGroupBy(orchestrator_.get(), base, opts);
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ(grouped->buckets.size(), 4u);
  EXPECT_EQ(grouped->buckets.front().group_value, 2);
  EXPECT_EQ(grouped->buckets.back().group_value, 5);
}

TEST_F(DerivedFixture, GroupByRejectsConstrainedGroupDim) {
  RangeQuery base = RangeQueryBuilder(Aggregation::kSum)
                        .Where(1, 0, 5)
                        .Build();
  GroupByOptions opts;
  opts.group_dim = 1;
  EXPECT_EQ(PrivateGroupBy(orchestrator_.get(), base, opts).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DerivedFixture, GroupByRejectsEmptyInterval) {
  RangeQuery base = RangeQueryBuilder(Aggregation::kSum)
                        .Where(0, 0, 39)
                        .Build();
  GroupByOptions opts;
  opts.group_dim = 1;
  opts.group_lo = 8;
  opts.group_hi = 7;  // empty
  EXPECT_FALSE(PrivateGroupBy(orchestrator_.get(), base, opts).ok());
}

}  // namespace
}  // namespace fedaqp
