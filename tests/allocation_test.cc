// Tests for the Eq. 6 allocation solver: constraint satisfaction, exactness
// against brute force, and sanitization of noisy inputs.

#include <vector>

#include <gtest/gtest.h>

#include "allocation/allocation_solver.h"

namespace fedaqp {
namespace {

TEST(AllocationTest, Validation) {
  EXPECT_FALSE(SolveAllocation({}, 0.2).ok());
  EXPECT_FALSE(SolveAllocation({{0.5, 10.0}}, 0.0).ok());
  EXPECT_FALSE(SolveAllocation({{0.5, 10.0}}, 1.0).ok());
}

TEST(AllocationTest, RespectsTotalAndCapacity) {
  std::vector<AllocationInput> inputs{
      {0.5, 10.0}, {0.2, 10.0}, {0.9, 10.0}, {0.1, 10.0}};
  Result<AllocationPlan> plan = SolveAllocation(inputs, 0.5);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->total, 20u);  // 0.5 * 40
  size_t sum = 0;
  for (size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_LE(plan->sample_sizes[i], 10u);
    sum += plan->sample_sizes[i];
  }
  EXPECT_EQ(sum, plan->total);
}

TEST(AllocationTest, FavoursDenseProviders) {
  std::vector<AllocationInput> inputs{{0.9, 10.0}, {0.1, 10.0}};
  Result<AllocationPlan> plan = SolveAllocation(inputs, 0.5);
  ASSERT_TRUE(plan.ok());
  // Dense provider is filled to capacity after minimums.
  EXPECT_EQ(plan->sample_sizes[0], 9u);
  EXPECT_EQ(plan->sample_sizes[1], 1u);
}

TEST(AllocationTest, EveryProviderParticipatesWhenBudgetAllows) {
  // Sec. 5.3.1: all providers get >= 1 so non-participation cannot leak
  // dataset size.
  std::vector<AllocationInput> inputs{
      {0.99, 100.0}, {0.01, 100.0}, {0.0, 100.0}};
  Result<AllocationPlan> plan = SolveAllocation(inputs, 0.1);
  ASSERT_TRUE(plan.ok());
  for (size_t s : plan->sample_sizes) EXPECT_GE(s, 1u);
}

TEST(AllocationTest, ScarceBudgetGoesToDensest) {
  // Target smaller than provider count: only the densest get a sample.
  std::vector<AllocationInput> inputs{
      {0.1, 2.0}, {0.9, 2.0}, {0.5, 2.0}, {0.2, 2.0}, {0.3, 2.0}};
  // total NQ = 10; sr=0.2 -> target 2 < 5 providers.
  Result<AllocationPlan> plan = SolveAllocation(inputs, 0.2);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->total, 2u);
  EXPECT_EQ(plan->sample_sizes[1], 1u);  // avg 0.9
  EXPECT_EQ(plan->sample_sizes[2], 1u);  // avg 0.5
  EXPECT_EQ(plan->sample_sizes[0], 0u);
}

TEST(AllocationTest, SanitizesNoisyInputs) {
  // Laplace noise can push Avg(R) and N^Q negative; the solver must clamp
  // rather than fail or emit negative allocations.
  std::vector<AllocationInput> inputs{
      {-0.2, 10.0}, {0.5, -3.0}, {0.7, 12.4}};
  Result<AllocationPlan> plan = SolveAllocation(inputs, 0.3);
  ASSERT_TRUE(plan.ok());
  // Provider 1 has no (sanitized) capacity.
  EXPECT_EQ(plan->sample_sizes[1], 0u);
  size_t sum = 0;
  for (size_t s : plan->sample_sizes) sum += s;
  EXPECT_EQ(sum, plan->total);
  // Target = round(0.3 * (10 + 0 + 12)) = 7.
  EXPECT_EQ(plan->total, 7u);
}

TEST(AllocationTest, CapacityBindsTarget) {
  // Rounded target may exceed the total capacity; it must be clamped.
  std::vector<AllocationInput> inputs{{0.5, 2.0}, {0.5, 2.0}};
  Result<AllocationPlan> plan = SolveAllocation(inputs, 0.9);
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan->total, 4u);
}

TEST(AllocationTest, MatchesBruteForceOnSmallInstances) {
  // The greedy must achieve the brute-force-optimal objective on every
  // small instance (continuous knapsack greedy is exact).
  std::vector<std::vector<AllocationInput>> cases{
      {{0.3, 4.0}, {0.8, 3.0}},
      {{0.1, 5.0}, {0.5, 5.0}, {0.9, 2.0}},
      {{0.6, 1.0}, {0.6, 6.0}, {0.2, 4.0}},
      {{0.25, 3.0}, {0.75, 3.0}, {0.5, 3.0}, {0.9, 1.0}},
  };
  for (double sr : {0.2, 0.4, 0.6}) {
    for (const auto& inputs : cases) {
      Result<AllocationPlan> greedy = SolveAllocation(inputs, sr);
      Result<AllocationPlan> brute = BruteForceAllocation(inputs, sr);
      ASSERT_TRUE(greedy.ok());
      ASSERT_TRUE(brute.ok());
      EXPECT_EQ(greedy->total, brute->total) << "sr=" << sr;
      EXPECT_NEAR(greedy->objective, brute->objective, 1e-9)
          << "sr=" << sr << " providers=" << inputs.size();
    }
  }
}

TEST(AllocationTest, ObjectiveIsReported) {
  std::vector<AllocationInput> inputs{{0.5, 4.0}, {1.0, 4.0}};
  Result<AllocationPlan> plan = SolveAllocation(inputs, 0.5);
  ASSERT_TRUE(plan.ok());
  double expected = 0.0;
  for (size_t i = 0; i < inputs.size(); ++i) {
    expected += inputs[i].avg_r * static_cast<double>(plan->sample_sizes[i]);
  }
  EXPECT_DOUBLE_EQ(plan->objective, expected);
}

}  // namespace
}  // namespace fedaqp
