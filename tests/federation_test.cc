// Tests for the federation protocol: provider-local steps, aggregator
// combination, and the orchestrated 7-step query lifecycle.

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/math.h"
#include "common/rng.h"
#include "federation/aggregator.h"
#include "federation/orchestrator.h"
#include "federation/provider.h"
#include "workload/datagen.h"

namespace fedaqp {
namespace {

// Shared fixture: a 4-provider federation over a skewed 3-dim tensor.
class FederationFixture : public ::testing::Test {
 protected:
  static constexpr size_t kProviders = 4;

  void SetUp() override {
    SyntheticConfig cfg;
    cfg.rows = 20000;
    cfg.seed = 99;
    cfg.dims = {
        {"a", 60, DistributionKind::kNormal, 0.4},
        {"b", 40, DistributionKind::kZipf, 1.2},
        {"c", 30, DistributionKind::kUniform, 0.0},
    };
    Result<std::vector<Table>> parts =
        GenerateFederatedTensors(cfg, {0, 1, 2}, kProviders);
    ASSERT_TRUE(parts.ok());
    for (size_t i = 0; i < kProviders; ++i) {
      DataProvider::Options popts;
      popts.storage.cluster_capacity = 128;
      popts.n_min = 4;
      popts.seed = 1000 + i;
      popts.name = "p" + std::to_string(i);
      Result<std::unique_ptr<DataProvider>> p =
          DataProvider::Create((*parts)[i], popts);
      ASSERT_TRUE(p.ok());
      providers_.push_back(std::move(p).value());
    }
  }

  std::vector<DataProvider*> Ptrs() {
    std::vector<DataProvider*> out;
    for (auto& p : providers_) out.push_back(p.get());
    return out;
  }

  FederationConfig DefaultConfig() {
    FederationConfig config;
    config.per_query_budget = {1.0, 1e-3};
    config.sampling_rate = 0.2;
    config.total_xi = 1000.0;
    config.total_psi = 10.0;
    return config;
  }

  RangeQuery WideQuery(Aggregation agg = Aggregation::kCount) {
    return RangeQueryBuilder(agg).Where(0, 5, 55).Where(1, 0, 30).Build();
  }

  std::vector<std::unique_ptr<DataProvider>> providers_;
};

// ---------------------------------------------------------------- Provider --

TEST_F(FederationFixture, ProviderCreateValidatesOptions) {
  Table t(providers_[0]->store().schema());
  DataProvider::Options bad;
  bad.n_min = 0;
  EXPECT_FALSE(DataProvider::Create(t, bad).ok());
  DataProvider::Options bad2;
  bad2.sum_sensitivity_bound = 0.0;
  EXPECT_FALSE(DataProvider::Create(t, bad2).ok());
}

TEST_F(FederationFixture, CoverMatchesMetadataStore) {
  RangeQuery q = WideQuery();
  ProviderWorkStats work;
  CoverInfo via_provider = providers_[0]->Cover(q, &work);
  CoverInfo direct = providers_[0]->metadata().Cover(q);
  EXPECT_EQ(via_provider.cluster_ids, direct.cluster_ids);
  EXPECT_GT(work.metadata_lookups, 0u);
  EXPECT_EQ(work.clusters_scanned, 0u) << "cover must not touch clusters";
}

TEST_F(FederationFixture, PublishSummaryIsCenteredOnTruth) {
  RangeQuery q = WideQuery();
  ProviderWorkStats work;
  CoverInfo cover = providers_[0]->Cover(q, &work);
  RunningStats avg_stats, nq_stats;
  for (int rep = 0; rep < 3000; ++rep) {
    Result<ProviderSummary> s =
        providers_[0]->PublishSummary(q, cover, /*eps=*/1.0);
    ASSERT_TRUE(s.ok());
    avg_stats.Add(s->noisy_avg_r);
    nq_stats.Add(s->noisy_n_q);
  }
  EXPECT_NEAR(avg_stats.mean(), cover.AverageR(), 0.05);
  EXPECT_NEAR(nq_stats.mean(), static_cast<double>(cover.NumClusters()), 0.5);
  // Noise is actually present.
  EXPECT_GT(nq_stats.stddev(), 0.1);
}

TEST_F(FederationFixture, PublishSummaryRejectsBadEpsilon) {
  RangeQuery q = WideQuery();
  CoverInfo cover = providers_[0]->Cover(q, nullptr);
  EXPECT_FALSE(providers_[0]->PublishSummary(q, cover, 0.0).ok());
}

TEST_F(FederationFixture, ApproximateScansOnlySampledClusters) {
  RangeQuery q = WideQuery();
  CoverInfo cover = providers_[0]->Cover(q, nullptr);
  ASSERT_GT(cover.NumClusters(), 4u);
  size_t sample = 3;
  Result<LocalEstimate> est = providers_[0]->Approximate(
      q, cover, sample, 0.1, 0.8, 1e-3, /*add_noise=*/false);
  ASSERT_TRUE(est.ok());
  // Draws are with replacement; duplicates share one scan.
  EXPECT_LE(est->work.clusters_scanned, sample);
  EXPECT_GE(est->work.clusters_scanned, 1u);
  EXPECT_LT(est->work.rows_scanned, providers_[0]->store().TotalRows());
  EXPECT_FALSE(est->exact);
  EXPECT_FALSE(est->noised);
  EXPECT_GT(est->sensitivity, 0.0);
}

TEST_F(FederationFixture, ApproximateIsRoughlyUnbiasedWithoutNoise) {
  RangeQuery q = WideQuery();
  int64_t truth = providers_[0]->store().EvaluateExact(q);
  CoverInfo cover = providers_[0]->Cover(q, nullptr);
  size_t sample = cover.NumClusters() / 2;
  RunningStats est_stats;
  for (int rep = 0; rep < 500; ++rep) {
    Result<LocalEstimate> est = providers_[0]->Approximate(
        q, cover, sample, 100.0, 0.8, 1e-3, /*add_noise=*/false);
    ASSERT_TRUE(est.ok());
    est_stats.Add(est->estimate);
  }
  // High eps_S makes the EM track pps closely; HH is then near-unbiased.
  EXPECT_NEAR(est_stats.mean(), static_cast<double>(truth),
              std::max(5.0, 0.15 * static_cast<double>(truth)));
}

TEST_F(FederationFixture, ExactAnswerMatchesCoverScan) {
  RangeQuery q = WideQuery();
  CoverInfo cover = providers_[0]->Cover(q, nullptr);
  Result<LocalEstimate> est =
      providers_[0]->ExactAnswer(q, cover, 0.8, /*add_noise=*/false);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(est->exact);
  EXPECT_DOUBLE_EQ(est->estimate,
                   static_cast<double>(
                       providers_[0]->store().EvaluateExact(q)));
  EXPECT_DOUBLE_EQ(est->sensitivity, 1.0);  // COUNT global sensitivity
}

TEST_F(FederationFixture, ExactSumUsesConfiguredBound) {
  RangeQuery q = WideQuery(Aggregation::kSum);
  CoverInfo cover = providers_[0]->Cover(q, nullptr);
  Result<LocalEstimate> est =
      providers_[0]->ExactAnswer(q, cover, 0.8, /*add_noise=*/false);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->sensitivity,
                   providers_[0]->options().sum_sensitivity_bound);
}

TEST_F(FederationFixture, FlattenRowsHasExpectedArity) {
  std::vector<double> flat = providers_[0]->FlattenRows();
  size_t rows = providers_[0]->store().TotalRows();
  size_t dims = providers_[0]->store().schema().num_dims();
  EXPECT_EQ(flat.size(), rows * (dims + 1));
}

// -------------------------------------------------------------- Aggregator --

TEST(AggregatorTest, AllocateDelegatesToSolver) {
  Aggregator agg(7);
  std::vector<ProviderSummary> summaries(2);
  summaries[0].noisy_avg_r = 0.9;
  summaries[0].noisy_n_q = 10.0;
  summaries[1].noisy_avg_r = 0.1;
  summaries[1].noisy_n_q = 10.0;
  Result<AllocationPlan> plan = agg.Allocate(summaries, 0.5);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->sample_sizes[0], plan->sample_sizes[1]);
}

TEST(AggregatorTest, CombineNoisySums) {
  Aggregator agg(7);
  std::vector<LocalEstimate> ests(3);
  ests[0].estimate = 10.0;
  ests[1].estimate = 20.0;
  ests[2].estimate = 30.0;
  EXPECT_DOUBLE_EQ(agg.CombineNoisy(ests), 60.0);
}

TEST(AggregatorTest, CombineSmcRejectsNoisedInputs) {
  Aggregator agg(7);
  SmcProtocol protocol{FixedPoint(), SmcCostModel{}};
  SimNetwork net;
  std::vector<LocalEstimate> ests(1);
  ests[0].estimate = 5.0;
  ests[0].noised = true;
  EXPECT_EQ(agg.CombineSmc(ests, 0.8, protocol, &net).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AggregatorTest, CombineSmcAddsSingleCalibratedNoise) {
  Aggregator agg(11);
  SmcProtocol protocol{FixedPoint(), SmcCostModel{}};
  std::vector<LocalEstimate> ests(2);
  ests[0].estimate = 100.0;
  ests[0].sensitivity = 2.0;
  ests[1].estimate = 200.0;
  ests[1].sensitivity = 5.0;
  RunningStats stats;
  for (int rep = 0; rep < 4000; ++rep) {
    SimNetwork net;
    Result<double> out = agg.CombineSmc(ests, 0.8, protocol, &net);
    ASSERT_TRUE(out.ok());
    stats.Add(*out);
  }
  EXPECT_NEAR(stats.mean(), 300.0, 2.0);
  // Laplace(2*max_sens/eps) = Laplace(12.5): stddev = 12.5*sqrt(2) ~ 17.7.
  EXPECT_NEAR(stats.stddev(), 12.5 * std::sqrt(2.0), 1.5);
}

// ------------------------------------------------------------ Orchestrator --

TEST_F(FederationFixture, CreateValidatesFederation) {
  EXPECT_FALSE(QueryOrchestrator::Create({}, DefaultConfig()).ok());
  EXPECT_FALSE(
      QueryOrchestrator::Create({nullptr}, DefaultConfig()).ok());

  FederationConfig bad_rate = DefaultConfig();
  bad_rate.sampling_rate = 0.0;
  EXPECT_FALSE(QueryOrchestrator::Create(Ptrs(), bad_rate).ok());

  FederationConfig bad_budget = DefaultConfig();
  bad_budget.per_query_budget.epsilon = -1.0;
  EXPECT_FALSE(QueryOrchestrator::Create(Ptrs(), bad_budget).ok());
}

TEST_F(FederationFixture, CreateRejectsMismatchedCapacity) {
  // A provider with a different S breaks Avg(R) comparability (Sec. 7).
  SyntheticConfig cfg;
  cfg.rows = 500;
  cfg.seed = 7;
  cfg.dims = {
      {"a", 60, DistributionKind::kUniform, 0.0},
      {"b", 40, DistributionKind::kUniform, 0.0},
      {"c", 30, DistributionKind::kUniform, 0.0},
  };
  Result<Table> t = GenerateSynthetic(cfg);
  ASSERT_TRUE(t.ok());
  DataProvider::Options popts;
  popts.storage.cluster_capacity = 64;  // others use 128
  Result<std::unique_ptr<DataProvider>> odd = DataProvider::Create(*t, popts);
  ASSERT_TRUE(odd.ok());
  std::vector<DataProvider*> ptrs = Ptrs();
  ptrs.push_back(odd->get());
  EXPECT_EQ(QueryOrchestrator::Create(ptrs, DefaultConfig()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(FederationFixture, ExecuteExactMatchesGroundTruth) {
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::Create(Ptrs(), DefaultConfig());
  ASSERT_TRUE(orch.ok());
  RangeQuery q = WideQuery();
  int64_t truth = 0;
  for (auto* p : Ptrs()) truth += p->store().EvaluateExact(q);
  Result<QueryResponse> resp = orch->ExecuteExact(q);
  ASSERT_TRUE(resp.ok());
  EXPECT_DOUBLE_EQ(resp->estimate, static_cast<double>(truth));
  EXPECT_FALSE(resp->approximated);
  // Exact scan touches every row of every provider.
  size_t total_rows = 0;
  for (auto* p : Ptrs()) total_rows += p->store().TotalRows();
  EXPECT_EQ(resp->breakdown.rows_scanned, total_rows);
}

TEST_F(FederationFixture, ExecuteApproximatesAndSavesWork) {
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::Create(Ptrs(), DefaultConfig());
  ASSERT_TRUE(orch.ok());
  RangeQuery q = WideQuery();
  Result<QueryResponse> resp = orch->Execute(q);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->approximated);
  Result<QueryResponse> exact = orch->ExecuteExact(q);
  ASSERT_TRUE(exact.ok());
  EXPECT_LT(resp->breakdown.rows_scanned, exact->breakdown.rows_scanned);
  EXPECT_GT(resp->breakdown.network_messages, 0u);
  EXPECT_EQ(resp->allocation.size(), kProviders);
}

TEST_F(FederationFixture, ExecuteEstimateIsReasonablyAccurate) {
  FederationConfig config = DefaultConfig();
  config.per_query_budget = {2.0, 1e-3};
  config.sampling_rate = 0.4;
  Result<QueryOrchestrator> orch = QueryOrchestrator::Create(Ptrs(), config);
  ASSERT_TRUE(orch.ok());
  RangeQuery q = WideQuery();
  Result<QueryResponse> exact = orch->ExecuteExact(q);
  ASSERT_TRUE(exact.ok());
  // Average several runs to smooth sampling noise.
  double acc = 0.0;
  const int reps = 15;
  for (int i = 0; i < reps; ++i) {
    Result<QueryResponse> resp = orch->Execute(q);
    ASSERT_TRUE(resp.ok());
    acc += resp->estimate;
  }
  double mean_estimate = acc / reps;
  EXPECT_LT(RelativeError(exact->estimate, mean_estimate), 0.35);
}

TEST_F(FederationFixture, BudgetExhaustionStopsQueries) {
  FederationConfig config = DefaultConfig();
  config.per_query_budget = {1.0, 1e-3};
  config.total_xi = 2.5;  // admits exactly two queries
  config.total_psi = 1.0;
  Result<QueryOrchestrator> orch = QueryOrchestrator::Create(Ptrs(), config);
  ASSERT_TRUE(orch.ok());
  RangeQuery q = WideQuery();
  EXPECT_TRUE(orch->Execute(q).ok());
  EXPECT_TRUE(orch->Execute(q).ok());
  Result<QueryResponse> third = orch->Execute(q);
  EXPECT_EQ(third.status().code(), StatusCode::kBudgetExhausted);
  EXPECT_EQ(orch->accountant().num_charges(), 2u);
}

TEST_F(FederationFixture, SmcModeProducesComparableEstimates) {
  FederationConfig config = DefaultConfig();
  config.mode = ReleaseMode::kSmc;
  config.per_query_budget = {2.0, 1e-3};
  config.sampling_rate = 0.4;
  Result<QueryOrchestrator> orch = QueryOrchestrator::Create(Ptrs(), config);
  ASSERT_TRUE(orch.ok());
  RangeQuery q = WideQuery();
  Result<QueryResponse> exact = orch->ExecuteExact(q);
  ASSERT_TRUE(exact.ok());
  double acc = 0.0;
  const int reps = 15;
  for (int i = 0; i < reps; ++i) {
    Result<QueryResponse> resp = orch->Execute(q);
    ASSERT_TRUE(resp.ok());
    acc += resp->estimate;
  }
  EXPECT_LT(RelativeError(exact->estimate, acc / reps), 0.35);
}

TEST_F(FederationFixture, SmcModeMovesMoreBytesThanDpMode) {
  FederationConfig dp_config = DefaultConfig();
  FederationConfig smc_config = DefaultConfig();
  smc_config.mode = ReleaseMode::kSmc;
  Result<QueryOrchestrator> dp_orch =
      QueryOrchestrator::Create(Ptrs(), dp_config);
  Result<QueryOrchestrator> smc_orch =
      QueryOrchestrator::Create(Ptrs(), smc_config);
  ASSERT_TRUE(dp_orch.ok());
  ASSERT_TRUE(smc_orch.ok());
  RangeQuery q = WideQuery();
  Result<QueryResponse> dp_resp = dp_orch->Execute(q);
  Result<QueryResponse> smc_resp = smc_orch->Execute(q);
  ASSERT_TRUE(dp_resp.ok());
  ASSERT_TRUE(smc_resp.ok());
  EXPECT_GT(smc_resp->breakdown.network_bytes,
            dp_resp->breakdown.network_bytes);
}

TEST_F(FederationFixture, SmallQueriesTakeExactPath) {
  // A point query covers few clusters; with N_min above that, providers
  // answer exactly and the response is flagged unapproximated.
  FederationConfig config = DefaultConfig();
  Result<QueryOrchestrator> orch = QueryOrchestrator::Create(Ptrs(), config);
  ASSERT_TRUE(orch.ok());
  // Find a point query covering < n_min clusters at every provider.
  RangeQuery q;
  bool found = false;
  for (Value v = 0; v < 60 && !found; ++v) {
    q = RangeQueryBuilder(Aggregation::kCount).Where(0, v, v).Build();
    found = true;
    for (auto* p : Ptrs()) {
      CoverInfo cover = p->Cover(q, nullptr);
      if (p->ShouldApproximate(cover)) {
        found = false;
        break;
      }
    }
  }
  if (!found) GTEST_SKIP() << "no sufficiently small query in this layout";
  Result<QueryResponse> resp = orch->Execute(q);
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->approximated);
}

TEST_F(FederationFixture, InvalidQueryRejectedBeforeBudgetSpend) {
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::Create(Ptrs(), DefaultConfig());
  ASSERT_TRUE(orch.ok());
  RangeQuery bad = RangeQueryBuilder(Aggregation::kCount)
                       .Where(99, 0, 1)
                       .Build();
  EXPECT_FALSE(orch->Execute(bad).ok());
  EXPECT_EQ(orch->accountant().num_charges(), 0u);
  EXPECT_DOUBLE_EQ(orch->accountant().spent().epsilon, 0.0);
}

}  // namespace
}  // namespace fedaqp
