// Tests for progressive (online) aggregation and error-bounded execution.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/math.h"
#include "core/error_bounded.h"
#include "federation/progressive.h"
#include "workload/datagen.h"

namespace fedaqp {
namespace {

class ProgressiveFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig cfg;
    cfg.rows = 40000;
    cfg.seed = 555;
    cfg.dims = {{"a", 50, DistributionKind::kNormal, 0.5},
                {"b", 30, DistributionKind::kZipf, 1.2},
                {"c", 20, DistributionKind::kUniform, 0.0}};
    Result<std::vector<Table>> parts =
        GenerateFederatedTensors(cfg, {0, 1, 2}, 4);
    ASSERT_TRUE(parts.ok());
    for (size_t i = 0; i < parts->size(); ++i) {
      DataProvider::Options popts;
      popts.storage.cluster_capacity = 512;
      popts.storage.layout = ClusterLayout::kShuffled;
      popts.storage.shuffle_seed = 100 + i;
      popts.n_min = 4;
      popts.seed = 600 + i;
      Result<std::unique_ptr<DataProvider>> p =
          DataProvider::Create((*parts)[i], popts);
      ASSERT_TRUE(p.ok());
      providers_.push_back(std::move(p).value());
    }
  }

  std::vector<DataProvider*> Ptrs() {
    std::vector<DataProvider*> out;
    for (auto& p : providers_) out.push_back(p.get());
    return out;
  }

  double Truth(const RangeQuery& q) {
    double total = 0.0;
    for (auto& p : providers_) {
      total += static_cast<double>(p->store().EvaluateExact(q));
    }
    return total;
  }

  RangeQuery BroadQuery() {
    return RangeQueryBuilder(Aggregation::kSum)
        .Where(0, 5, 45)
        .Where(1, 0, 20)
        .Build();
  }

  std::vector<std::unique_ptr<DataProvider>> providers_;
};

TEST_F(ProgressiveFixture, Validation) {
  ProgressiveOptions opts;
  EXPECT_FALSE(ExecuteProgressive({}, BroadQuery(), opts).ok());
  ProgressiveOptions zero_rounds;
  zero_rounds.rounds = 0;
  EXPECT_FALSE(ExecuteProgressive(Ptrs(), BroadQuery(), zero_rounds).ok());
  ProgressiveOptions bad_rate;
  bad_rate.sampling_rate = 1.5;
  EXPECT_FALSE(ExecuteProgressive(Ptrs(), BroadQuery(), bad_rate).ok());
}

TEST_F(ProgressiveFixture, ProducesOneEntryPerRound) {
  ProgressiveOptions opts;
  opts.rounds = 5;
  opts.sampling_rate = 0.3;
  opts.budget = {2.0, 1e-3};
  Result<std::vector<ProgressiveRound>> rounds =
      ExecuteProgressive(Ptrs(), BroadQuery(), opts);
  ASSERT_TRUE(rounds.ok());
  ASSERT_EQ(rounds->size(), 5u);
  for (size_t i = 0; i < rounds->size(); ++i) {
    EXPECT_EQ((*rounds)[i].round, i + 1);
    EXPECT_GT((*rounds)[i].stderr_estimate, 0.0);
  }
}

TEST_F(ProgressiveFixture, WorkAndBudgetGrowMonotonically) {
  ProgressiveOptions opts;
  opts.rounds = 4;
  opts.sampling_rate = 0.3;
  opts.budget = {2.0, 1e-3};
  Result<std::vector<ProgressiveRound>> rounds =
      ExecuteProgressive(Ptrs(), BroadQuery(), opts);
  ASSERT_TRUE(rounds.ok());
  for (size_t i = 1; i < rounds->size(); ++i) {
    EXPECT_GE((*rounds)[i].clusters_scanned, (*rounds)[i - 1].clusters_scanned);
    EXPECT_GT((*rounds)[i].spent.epsilon, (*rounds)[i - 1].spent.epsilon);
    EXPECT_GT((*rounds)[i].spent.delta, (*rounds)[i - 1].spent.delta);
  }
}

TEST_F(ProgressiveFixture, FullRunCostsTheOneShotBudget) {
  ProgressiveOptions opts;
  opts.rounds = 4;
  opts.sampling_rate = 0.3;
  opts.budget = {1.0, 1e-3};
  Result<std::vector<ProgressiveRound>> rounds =
      ExecuteProgressive(Ptrs(), BroadQuery(), opts);
  ASSERT_TRUE(rounds.ok());
  const ProgressiveRound& last = rounds->back();
  EXPECT_NEAR(last.spent.epsilon, 1.0, 1e-9);
  EXPECT_NEAR(last.spent.delta, 1e-3, 1e-12);
}

TEST_F(ProgressiveFixture, LaterRoundsConvergeTowardTruth) {
  // Average over repetitions: the final round's mean error should not
  // exceed the first round's (more draws, same per-round noise scale
  // structure).
  ProgressiveOptions opts;
  opts.rounds = 4;
  opts.sampling_rate = 0.4;
  opts.budget = {4.0, 1e-3};
  double truth = Truth(BroadQuery());
  RunningStats first_err, last_err;
  for (int rep = 0; rep < 12; ++rep) {
    Result<std::vector<ProgressiveRound>> rounds =
        ExecuteProgressive(Ptrs(), BroadQuery(), opts);
    ASSERT_TRUE(rounds.ok());
    first_err.Add(RelativeError(truth, rounds->front().estimate));
    last_err.Add(RelativeError(truth, rounds->back().estimate));
  }
  EXPECT_LT(last_err.mean(), first_err.mean() * 1.5 + 0.05);
  EXPECT_LT(last_err.mean(), 0.5);
}

TEST_F(ProgressiveFixture, StderrShrinksAcrossRounds) {
  ProgressiveOptions opts;
  opts.rounds = 4;
  opts.sampling_rate = 0.4;
  opts.budget = {4.0, 1e-3};
  Result<std::vector<ProgressiveRound>> rounds =
      ExecuteProgressive(Ptrs(), BroadQuery(), opts);
  ASSERT_TRUE(rounds.ok());
  // Sampling variance decreases with draws; the noise component is equal
  // per round, so the total stderr should not grow much.
  EXPECT_LE(rounds->back().stderr_estimate,
            rounds->front().stderr_estimate * 1.5);
}

// ---------------------------------------------------------- ErrorBounded --

TEST_F(ProgressiveFixture, ErrorBoundedValidation) {
  ErrorBoundedOptions opts;
  opts.target_relative_stderr = 0.0;
  EXPECT_FALSE(ExecuteErrorBounded(Ptrs(), BroadQuery(), opts).ok());
}

TEST_F(ProgressiveFixture, LooseTargetStopsEarly) {
  ErrorBoundedOptions opts;
  opts.target_relative_stderr = 10.0;  // trivially loose
  opts.progressive.rounds = 6;
  opts.progressive.sampling_rate = 0.3;
  opts.progressive.budget = {2.0, 1e-3};
  Result<ErrorBoundedResult> r =
      ExecuteErrorBounded(Ptrs(), BroadQuery(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->met_target);
  EXPECT_EQ(r->rounds_used, 1u);
  // Early stop spends less than the full budget.
  EXPECT_LT(r->spent.epsilon, 2.0);
}

TEST_F(ProgressiveFixture, ImpossibleTargetExhaustsRounds) {
  ErrorBoundedOptions opts;
  opts.target_relative_stderr = 1e-9;
  opts.progressive.rounds = 3;
  opts.progressive.sampling_rate = 0.3;
  opts.progressive.budget = {2.0, 1e-3};
  Result<ErrorBoundedResult> r =
      ExecuteErrorBounded(Ptrs(), BroadQuery(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->met_target);
  EXPECT_EQ(r->rounds_used, 3u);
  EXPECT_NEAR(r->spent.epsilon, 2.0, 1e-9);
}

TEST_F(ProgressiveFixture, AchievedMatchesReportedComponents) {
  ErrorBoundedOptions opts;
  opts.target_relative_stderr = 0.5;
  opts.progressive.rounds = 4;
  opts.progressive.sampling_rate = 0.4;
  opts.progressive.budget = {2.0, 1e-3};
  Result<ErrorBoundedResult> r =
      ExecuteErrorBounded(Ptrs(), BroadQuery(), opts);
  ASSERT_TRUE(r.ok());
  if (r->estimate != 0.0) {
    EXPECT_NEAR(r->achieved, r->stderr_estimate / std::abs(r->estimate),
                1e-12);
  }
}

}  // namespace
}  // namespace fedaqp
