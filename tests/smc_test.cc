// Tests for the SMC substrate: additive shares, fixed-point encoding and
// the secure-sum / sum+max / row-sharing protocols with traffic accounting.

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/sim_network.h"
#include "smc/fixed_point.h"
#include "smc/protocol.h"
#include "smc/shares.h"

namespace fedaqp {
namespace {

// ---------------------------------------------------------------- Shares --

TEST(SharesTest, SplitReconstructRoundTrip) {
  Rng rng(3);
  for (uint64_t v : {0ULL, 1ULL, 123456789ULL, ~0ULL}) {
    for (size_t parties : {1u, 2u, 4u, 7u}) {
      Result<std::vector<uint64_t>> shares =
          AdditiveShares::Split(v, parties, &rng);
      ASSERT_TRUE(shares.ok());
      EXPECT_EQ(shares->size(), parties);
      EXPECT_EQ(AdditiveShares::Reconstruct(*shares), v);
    }
  }
}

TEST(SharesTest, ZeroPartiesRejected) {
  Rng rng(5);
  EXPECT_FALSE(AdditiveShares::Split(1, 0, &rng).ok());
}

TEST(SharesTest, IndividualSharesLookUniform) {
  // No single share should reveal the secret: with a fixed secret, each
  // share position must take many distinct values across fresh sharings.
  Rng rng(7);
  std::set<uint64_t> first_share_values;
  for (int i = 0; i < 100; ++i) {
    Result<std::vector<uint64_t>> shares = AdditiveShares::Split(42, 3, &rng);
    ASSERT_TRUE(shares.ok());
    first_share_values.insert((*shares)[0]);
  }
  EXPECT_GT(first_share_values.size(), 95u);
}

TEST(SharesTest, ShareWiseAdditionIsSecureSum) {
  Rng rng(11);
  Result<std::vector<uint64_t>> a = AdditiveShares::Split(100, 4, &rng);
  Result<std::vector<uint64_t>> b = AdditiveShares::Split(23, 4, &rng);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Result<std::vector<uint64_t>> sum = AdditiveShares::Add(*a, *b);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(AdditiveShares::Reconstruct(*sum), 123u);
  EXPECT_FALSE(AdditiveShares::Add(*a, {1, 2}).ok());
}

// ------------------------------------------------------------ FixedPoint --

TEST(FixedPointTest, EncodeDecodeRoundTrip) {
  FixedPoint fp(20);
  for (double v : {0.0, 1.0, -1.0, 3.14159, -123456.789, 1e9}) {
    EXPECT_NEAR(fp.Decode(fp.Encode(v)), v, 1e-5) << v;
  }
}

TEST(FixedPointTest, NegativeValuesViaTwosComplement) {
  FixedPoint fp(10);
  EXPECT_NEAR(fp.Decode(fp.Encode(-42.5)), -42.5, 1e-3);
}

TEST(FixedPointTest, AdditivityUnderRingArithmetic) {
  // Encode(a) + Encode(b) decodes to a + b — the property SMC sums rely on.
  FixedPoint fp(20);
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    double a = rng.UniformRange(-1e6, 1e6);
    double b = rng.UniformRange(-1e6, 1e6);
    uint64_t ring_sum = fp.Encode(a) + fp.Encode(b);
    EXPECT_NEAR(fp.Decode(ring_sum), a + b, 1e-4);
  }
}

// -------------------------------------------------------------- Protocol --

TEST(SmcProtocolTest, SecureSumMatchesPlainSum) {
  SmcProtocol protocol{FixedPoint(), SmcCostModel{}};
  Rng rng(17);
  SimNetwork net;
  std::vector<double> inputs{10.5, -2.25, 100.0, 7.75};
  Result<double> sum = protocol.SecureSum(inputs, &net, &rng);
  ASSERT_TRUE(sum.ok());
  EXPECT_NEAR(*sum, 116.0, 1e-4);
  EXPECT_GT(net.stats().messages, 0u);
}

TEST(SmcProtocolTest, SecureSumSingleParty) {
  SmcProtocol protocol{FixedPoint(), SmcCostModel{}};
  Rng rng(19);
  Result<double> sum = protocol.SecureSum({5.0}, nullptr, &rng);
  ASSERT_TRUE(sum.ok());
  EXPECT_NEAR(*sum, 5.0, 1e-5);
  EXPECT_FALSE(protocol.SecureSum({}, nullptr, &rng).ok());
}

TEST(SmcProtocolTest, SumAndMaxComputesBoth) {
  SmcProtocol protocol{FixedPoint(), SmcCostModel{}};
  Rng rng(23);
  SimNetwork net;
  Result<SmcAggregate> agg = protocol.SumAndMax(
      {1.0, 2.0, 3.0}, {0.5, 9.5, 2.0}, &net, &rng);
  ASSERT_TRUE(agg.ok());
  EXPECT_NEAR(agg->sum, 6.0, 1e-4);
  EXPECT_DOUBLE_EQ(agg->max, 9.5);
  EXPECT_FALSE(protocol.SumAndMax({1.0}, {1.0, 2.0}, &net, &rng).ok());
}

TEST(SmcProtocolTest, SumAndMaxChargesComparisonTraffic) {
  SmcCostModel cost;
  cost.comparison_rounds = 2;
  cost.comparison_bytes = 1024;
  SmcProtocol protocol{FixedPoint(), cost};
  Rng rng(29);
  SimNetwork with_max;
  ASSERT_TRUE(protocol
                  .SumAndMax({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}, &with_max,
                             &rng)
                  .ok());
  SimNetwork sum_only;
  ASSERT_TRUE(protocol.SecureSum({1.0, 1.0, 1.0}, &sum_only, &rng).ok());
  EXPECT_GT(with_max.stats().bytes, sum_only.stats().bytes);
}

TEST(SmcProtocolTest, ShareRowsReconstructsGlobalSum) {
  SmcProtocol protocol{FixedPoint(), SmcCostModel{}};
  Rng rng(31);
  SimNetwork net;
  std::vector<std::vector<double>> rows_per_party{
      {1.0, 2.0, 3.0}, {4.0, 5.0}, {6.0}};
  Result<double> witness = protocol.ShareRows(rows_per_party, &net, &rng);
  ASSERT_TRUE(witness.ok());
  EXPECT_NEAR(*witness, 21.0, 1e-4);
}

TEST(SmcProtocolTest, ShamirSumMatchesPlainSumWithoutDropouts) {
  SmcProtocol protocol{FixedPoint(), SmcCostModel{}};
  Rng rng(41);
  SimNetwork net;
  Result<double> sum = protocol.SecureSumWithDropouts(
      {10.5, 2.25, 100.0, 7.25}, /*threshold=*/3, /*dropped=*/{}, &net, &rng);
  ASSERT_TRUE(sum.ok());
  EXPECT_NEAR(*sum, 120.0, 1e-4);
}

TEST(SmcProtocolTest, ShamirSumSurvivesDropoutsUpToThreshold) {
  // Failure injection: providers crash after sharing, before aggregation.
  SmcProtocol protocol{FixedPoint(), SmcCostModel{}};
  Rng rng(43);
  std::vector<double> inputs{5.0, 6.0, 7.0, 8.0, 9.0};
  // threshold 3 of 5: tolerate up to two dropouts.
  for (const std::vector<size_t>& dropped :
       std::vector<std::vector<size_t>>{{}, {0}, {4}, {1, 3}, {0, 4}}) {
    SimNetwork net;
    Result<double> sum = protocol.SecureSumWithDropouts(
        inputs, 3, dropped, &net, &rng);
    ASSERT_TRUE(sum.ok()) << dropped.size() << " dropouts";
    EXPECT_NEAR(*sum, 35.0, 1e-4);
  }
  // Three dropouts exceed the tolerance.
  SimNetwork net;
  EXPECT_EQ(protocol.SecureSumWithDropouts(inputs, 3, {0, 1, 2}, &net, &rng)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(SmcProtocolTest, ShamirSumValidation) {
  SmcProtocol protocol{FixedPoint(), SmcCostModel{}};
  Rng rng(47);
  EXPECT_FALSE(
      protocol.SecureSumWithDropouts({}, 1, {}, nullptr, &rng).ok());
  EXPECT_FALSE(
      protocol.SecureSumWithDropouts({1.0}, 0, {}, nullptr, &rng).ok());
  EXPECT_FALSE(
      protocol.SecureSumWithDropouts({1.0}, 2, {}, nullptr, &rng).ok());
  EXPECT_FALSE(
      protocol.SecureSumWithDropouts({1.0, 2.0}, 1, {7}, nullptr, &rng).ok());
  EXPECT_FALSE(
      protocol.SecureSumWithDropouts({-1.0, 2.0}, 1, {}, nullptr, &rng).ok());
}

TEST(SmcProtocolTest, AdditiveSchemeCannotSurviveDropouts) {
  // The contrast motivating the Shamir path: additive reconstruction with
  // a missing party yields garbage (a uniformly random-looking value),
  // not the sum.
  Rng rng(53);
  Result<std::vector<uint64_t>> shares = AdditiveShares::Split(1000, 4, &rng);
  ASSERT_TRUE(shares.ok());
  std::vector<uint64_t> missing_one(shares->begin(), shares->end() - 1);
  EXPECT_NE(AdditiveShares::Reconstruct(missing_one), 1000u);
}

TEST(SmcProtocolTest, RowSharingTrafficScalesWithRows) {
  // Fig. 1's core phenomenon: row sharing moves bytes proportional to the
  // table size; result sharing is constant.
  SmcProtocol protocol{FixedPoint(), SmcCostModel{}};
  Rng rng(37);

  SimNetwork small_net, large_net, result_net;
  std::vector<std::vector<double>> small(4, std::vector<double>(100, 1.0));
  std::vector<std::vector<double>> large(4, std::vector<double>(10000, 1.0));
  ASSERT_TRUE(protocol.ShareRows(small, &small_net, &rng).ok());
  ASSERT_TRUE(protocol.ShareRows(large, &large_net, &rng).ok());
  ASSERT_TRUE(
      protocol.SecureSum({1.0, 2.0, 3.0, 4.0}, &result_net, &rng).ok());

  EXPECT_NEAR(static_cast<double>(large_net.stats().bytes) /
                  static_cast<double>(small_net.stats().bytes),
              100.0, 2.0);
  EXPECT_LT(result_net.stats().bytes, small_net.stats().bytes);
}

}  // namespace
}  // namespace fedaqp
