// Parameterized property tests sweeping invariants across configurations
// (TEST_P / INSTANTIATE_TEST_SUITE_P).

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/math.h"
#include "common/rng.h"
#include "dp/laplace.h"
#include "dp/sensitivity.h"
#include "dp/smooth_sensitivity.h"
#include "metadata/metadata_store.h"
#include "sampling/hansen_hurwitz.h"
#include "sampling/pps.h"
#include "storage/cluster_store.h"
#include "workload/datagen.h"
#include "workload/query_gen.h"

namespace fedaqp {
namespace {

// ----------------------------------------------- Storage/metadata sweeps --

// Param: (rows, capacity, layout, seed).
using StorageParam = std::tuple<size_t, size_t, int, uint64_t>;

class StorageProperty : public ::testing::TestWithParam<StorageParam> {
 protected:
  Table MakeTable() {
    auto [rows, capacity, layout, seed] = GetParam();
    (void)capacity;
    (void)layout;
    SyntheticConfig cfg;
    cfg.rows = rows;
    cfg.seed = seed;
    cfg.dims = {{"a", 64, DistributionKind::kZipf, 1.2},
                {"b", 32, DistributionKind::kNormal, 0.5}};
    Result<Table> t = GenerateSynthetic(cfg);
    EXPECT_TRUE(t.ok());
    return std::move(t).value();
  }

  ClusterStore MakeStore(const Table& t) {
    auto [rows, capacity, layout, seed] = GetParam();
    (void)rows;
    ClusterStoreOptions opts;
    opts.cluster_capacity = capacity;
    opts.layout = static_cast<ClusterLayout>(layout);
    opts.shuffle_seed = seed;
    Result<ClusterStore> store = ClusterStore::Build(t, opts);
    EXPECT_TRUE(store.ok());
    return std::move(store).value();
  }
};

TEST_P(StorageProperty, ExactEvaluationInvariantUnderLayout) {
  Table t = MakeTable();
  ClusterStore store = MakeStore(t);
  Rng rng(std::get<3>(GetParam()) ^ 0x5555);
  for (int trial = 0; trial < 8; ++trial) {
    Value lo = rng.UniformInt(0, 40);
    Value hi = rng.UniformInt(lo, 63);
    for (Aggregation agg : {Aggregation::kCount, Aggregation::kSum}) {
      RangeQuery q = RangeQueryBuilder(agg).Where(0, lo, hi).Build();
      EXPECT_EQ(store.EvaluateExact(q), t.Evaluate(q));
    }
  }
}

TEST_P(StorageProperty, CoverNeverMissesMatchingClusters) {
  Table t = MakeTable();
  ClusterStore store = MakeStore(t);
  MetadataStore metas = MetadataStore::Build(store);
  Rng rng(std::get<3>(GetParam()) ^ 0xAAAA);
  for (int trial = 0; trial < 8; ++trial) {
    Value lo0 = rng.UniformInt(0, 40), hi0 = rng.UniformInt(lo0, 63);
    Value lo1 = rng.UniformInt(0, 20), hi1 = rng.UniformInt(lo1, 31);
    RangeQuery q = RangeQueryBuilder(Aggregation::kCount)
                       .Where(0, lo0, hi0)
                       .Where(1, lo1, hi1)
                       .Build();
    CoverInfo cover = metas.Cover(q);
    std::vector<bool> covered(store.num_clusters(), false);
    for (uint32_t id : cover.cluster_ids) covered[id] = true;
    int64_t matching_total = 0;
    for (const auto& c : store.clusters()) {
      ScanResult s = c.Scan(q);
      if (s.count > 0) {
        EXPECT_TRUE(covered[c.id()])
            << "cluster " << c.id() << " has matches but is not covered";
      }
      matching_total += s.count;
    }
    // Scanning just the cover reproduces the exact result.
    Result<ScanResult> cover_scan = store.ScanClusters(q, cover.cluster_ids);
    ASSERT_TRUE(cover_scan.ok());
    EXPECT_EQ(cover_scan->count, matching_total);
  }
}

TEST_P(StorageProperty, ProportionsAreWithinUnitInterval) {
  Table t = MakeTable();
  ClusterStore store = MakeStore(t);
  MetadataStore metas = MetadataStore::Build(store);
  Rng rng(std::get<3>(GetParam()) ^ 0x1234);
  for (int trial = 0; trial < 8; ++trial) {
    Value lo = rng.UniformInt(0, 50), hi = rng.UniformInt(lo, 63);
    RangeQuery q = RangeQueryBuilder(Aggregation::kCount).Where(0, lo, hi).Build();
    CoverInfo cover = metas.Cover(q);
    for (double r : cover.proportions) {
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0 + 1e-12);
    }
    std::vector<double> pps = PpsProbabilities(cover.proportions);
    double total = 0.0;
    for (double p : pps) total += p;
    if (!pps.empty()) EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StorageProperty,
    ::testing::Combine(::testing::Values<size_t>(500, 3000),
                       ::testing::Values<size_t>(64, 256),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values<uint64_t>(1, 99)));

// ----------------------------------------------------- Sensitivity sweeps --

// Param: (capacity S, dims, n_min).
using SensParam = std::tuple<size_t, size_t, size_t>;

class SensitivityProperty : public ::testing::TestWithParam<SensParam> {};

TEST_P(SensitivityProperty, ClosedFormsArepositiveAndOrdered) {
  auto [s, dims, n_min] = GetParam();
  double dr = DeltaR(s, dims);
  EXPECT_GT(dr, 0.0);
  EXPECT_LE(dr, 1.0);
  // Delta_R grows with dims, shrinks with capacity.
  EXPECT_GE(DeltaR(s, dims + 1), dr);
  EXPECT_LE(DeltaR(s * 2, dims), dr);
  double davg = DeltaAvgR(s, dims, n_min);
  EXPECT_GT(davg, 0.0);
  EXPECT_GE(davg, dr / static_cast<double>(n_min) - 1e-15);
  EXPECT_GE(davg, 1.0 / (static_cast<double>(n_min) + 1.0) - 1e-15);
  double dp = DeltaP(n_min);
  EXPECT_GT(dp, 0.0);
  EXPECT_LE(dp, 0.5);
}

TEST_P(SensitivityProperty, SmoothSensitivityMonotoneInSlope) {
  auto [s, dims, n_min] = GetParam();
  (void)s;
  (void)dims;
  (void)n_min;
  Result<SmoothSensitivity> f = SmoothSensitivity::Create(0.8, 1e-3);
  ASSERT_TRUE(f.ok());
  double prev = 0.0;
  for (double slope : {0.1, 1.0, 10.0, 100.0}) {
    double cur = f->ComputeLinear(slope);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SensitivityProperty,
                         ::testing::Combine(::testing::Values<size_t>(16, 256,
                                                                      4096),
                                            ::testing::Values<size_t>(1, 3, 7),
                                            ::testing::Values<size_t>(2, 4,
                                                                      16)));

// ------------------------------------------------------- Estimator sweeps --

// Param: (population clusters, sample size, seed).
using HhParam = std::tuple<size_t, size_t, uint64_t>;

class HansenHurwitzProperty : public ::testing::TestWithParam<HhParam> {};

TEST_P(HansenHurwitzProperty, UnbiasedAcrossConfigurations) {
  auto [population, sample, seed] = GetParam();
  Rng rng(seed);
  std::vector<double> totals(population);
  for (double& t : totals) t = rng.UniformRange(1.0, 100.0);
  double truth = 0.0;
  for (double t : totals) truth += t;
  std::vector<double> p = PpsProbabilities(totals);
  RunningStats means;
  for (int rep = 0; rep < 4000; ++rep) {
    std::vector<double> drawn, probs;
    for (size_t i = 0; i < sample; ++i) {
      size_t idx = rng.WeightedIndex(p);
      drawn.push_back(totals[idx]);
      probs.push_back(p[idx]);
    }
    Result<HansenHurwitzEstimate> e = HansenHurwitz(drawn, probs);
    ASSERT_TRUE(e.ok());
    means.Add(e->estimate);
  }
  EXPECT_NEAR(means.mean(), truth, truth * 0.03)
      << "population=" << population << " sample=" << sample;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HansenHurwitzProperty,
    ::testing::Combine(::testing::Values<size_t>(5, 20, 100),
                       ::testing::Values<size_t>(2, 8),
                       ::testing::Values<uint64_t>(7, 21)));

// ---------------------------------------------------------- Noise sweeps --

// Param: epsilon.
class LaplaceAccuracyProperty : public ::testing::TestWithParam<double> {};

TEST_P(LaplaceAccuracyProperty, EmpiricalScaleMatchesTheory) {
  double eps = GetParam();
  Result<LaplaceMechanism> m = LaplaceMechanism::Create(eps, 1.0);
  ASSERT_TRUE(m.ok());
  Rng rng(static_cast<uint64_t>(eps * 1000) + 1);
  RunningStats st;
  for (int i = 0; i < 60000; ++i) st.Add(m->AddNoise(0.0, &rng));
  double expected_std = std::sqrt(2.0) / eps;
  EXPECT_NEAR(st.stddev(), expected_std, expected_std * 0.05) << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LaplaceAccuracyProperty,
                         ::testing::Values(0.1, 0.3, 0.5, 0.9, 1.3));

// ----------------------------------------------- Query generation sweeps --

// Param: (num dims, seed).
using QueryGenParam = std::tuple<size_t, uint64_t>;

class QueryGenProperty : public ::testing::TestWithParam<QueryGenParam> {};

TEST_P(QueryGenProperty, AllGeneratedQueriesValidate) {
  auto [dims, seed] = GetParam();
  SyntheticConfig cfg = AdultConfig(10, seed);
  Schema schema;
  for (const auto& d : cfg.dims) {
    ASSERT_TRUE(schema.AddDimension(d.name, d.domain).ok());
  }
  QueryGenOptions opts;
  opts.num_dims = dims;
  opts.seed = seed;
  RandomQueryGenerator gen(schema, opts);
  Result<std::vector<RangeQuery>> wl = gen.Workload(25);
  ASSERT_TRUE(wl.ok());
  for (const auto& q : *wl) {
    EXPECT_TRUE(q.Validate(schema).ok());
    EXPECT_EQ(q.num_constrained_dims(), dims);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QueryGenProperty,
    ::testing::Combine(::testing::Values<size_t>(2, 4, 7),
                       ::testing::Values<uint64_t>(3, 17, 91)));

}  // namespace
}  // namespace fedaqp
