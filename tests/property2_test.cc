// Second parameterized property suite: Shamir sharing sweeps, persistence
// across layouts/capacities, stratified estimation sweeps, EM determinism
// and balanced chunking invariants.

#include <cstdio>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/math.h"
#include "common/rng.h"
#include "sampling/em_sampler.h"
#include "sampling/stratified.h"
#include "smc/shamir.h"
#include "storage/persistence.h"
#include "workload/datagen.h"

namespace fedaqp {
namespace {

// ------------------------------------------------------------ Shamir sweep

// Param: (threshold, parties, seed).
using ShamirParam = std::tuple<size_t, size_t, uint64_t>;

class ShamirProperty : public ::testing::TestWithParam<ShamirParam> {};

TEST_P(ShamirProperty, ThresholdReconstructionAcrossConfigurations) {
  auto [t, n, seed] = GetParam();
  Rng rng(seed);
  for (uint64_t secret :
       std::vector<uint64_t>{0, 1, 424242, ShamirShares::kPrime - 1}) {
    Result<std::vector<ShamirShares::Share>> shares =
        ShamirShares::Split(secret, t, n, &rng);
    ASSERT_TRUE(shares.ok());
    // First t shares reconstruct.
    std::vector<ShamirShares::Share> prefix(shares->begin(),
                                            shares->begin() + t);
    EXPECT_EQ(*ShamirShares::Reconstruct(prefix), secret);
    // Last t shares reconstruct too.
    std::vector<ShamirShares::Share> suffix(shares->end() - t, shares->end());
    EXPECT_EQ(*ShamirShares::Reconstruct(suffix), secret);
    // All n shares reconstruct (over-determined interpolation still
    // recovers a degree t-1 polynomial's constant term).
    EXPECT_EQ(*ShamirShares::Reconstruct(*shares), secret);
  }
}

TEST_P(ShamirProperty, HomomorphicSumAcrossConfigurations) {
  auto [t, n, seed] = GetParam();
  Rng rng(seed ^ 0xabc);
  Result<std::vector<ShamirShares::Share>> a =
      ShamirShares::Split(1000, t, n, &rng);
  Result<std::vector<ShamirShares::Share>> b =
      ShamirShares::Split(234, t, n, &rng);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Result<std::vector<ShamirShares::Share>> sum = ShamirShares::Add(*a, *b);
  ASSERT_TRUE(sum.ok());
  std::vector<ShamirShares::Share> subset(sum->begin(), sum->begin() + t);
  EXPECT_EQ(*ShamirShares::Reconstruct(subset), 1234u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShamirProperty,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 3, 5),
                       ::testing::Values<size_t>(5, 9),
                       ::testing::Values<uint64_t>(3, 77)));

// ------------------------------------------------------- Persistence sweep

// Param: (layout, capacity).
using PersistParam = std::tuple<int, size_t>;

class PersistenceProperty : public ::testing::TestWithParam<PersistParam> {};

TEST_P(PersistenceProperty, StoreRoundTripAcrossLayoutsAndCapacities) {
  auto [layout, capacity] = GetParam();
  SyntheticConfig cfg;
  cfg.rows = 1500;
  cfg.seed = 7 + capacity;
  cfg.dims = {{"x", 40, DistributionKind::kZipf, 1.4},
              {"y", 15, DistributionKind::kUniform, 0.0}};
  Result<Table> t = GenerateSynthetic(cfg);
  ASSERT_TRUE(t.ok());
  ClusterStoreOptions opts;
  opts.cluster_capacity = capacity;
  opts.layout = static_cast<ClusterLayout>(layout);
  opts.shuffle_seed = 3;
  Result<ClusterStore> store = ClusterStore::Build(*t, opts);
  ASSERT_TRUE(store.ok());

  std::string path = testing::TempDir() + "/fedaqp_prop_" +
                     std::to_string(layout) + "_" + std::to_string(capacity);
  ASSERT_TRUE(SaveClusterStore(*store, path).ok());
  Result<ClusterStore> back = LoadClusterStore(path);
  ASSERT_TRUE(back.ok());

  EXPECT_EQ(back->num_clusters(), store->num_clusters());
  Rng rng(19);
  for (int trial = 0; trial < 5; ++trial) {
    Value lo = rng.UniformInt(0, 30);
    Value hi = rng.UniformInt(lo, 39);
    for (Aggregation agg :
         {Aggregation::kCount, Aggregation::kSum, Aggregation::kSumSquares}) {
      RangeQuery q = RangeQueryBuilder(agg).Where(0, lo, hi).Build();
      EXPECT_EQ(back->EvaluateExact(q), store->EvaluateExact(q));
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Sweep, PersistenceProperty,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values<size_t>(64,
                                                                      500)));

// ------------------------------------------------------------- Chunk sweep

class ChunkProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(ChunkProperty, BalancedChunkingInvariants) {
  size_t rows = GetParam();
  SyntheticConfig cfg;
  cfg.rows = rows;
  cfg.seed = rows;
  cfg.dims = {{"x", 10, DistributionKind::kUniform, 0.0}};
  Result<Table> t = GenerateSynthetic(cfg);
  ASSERT_TRUE(t.ok());
  for (size_t capacity : {7u, 64u, 129u}) {
    ClusterStoreOptions opts;
    opts.cluster_capacity = capacity;
    Result<ClusterStore> store = ClusterStore::Build(*t, opts);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(store->TotalRows(), rows);
    size_t expected_clusters = (rows + capacity - 1) / capacity;
    EXPECT_EQ(store->num_clusters(), expected_clusters);
    size_t min_size = rows, max_size = 0;
    for (const auto& c : store->clusters()) {
      EXPECT_LE(c.num_rows(), capacity);
      min_size = std::min(min_size, c.num_rows());
      max_size = std::max(max_size, c.num_rows());
    }
    if (store->num_clusters() > 0) {
      EXPECT_LE(max_size - min_size, 1u)
          << "rows=" << rows << " cap=" << capacity;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChunkProperty,
                         ::testing::Values<size_t>(1, 7, 63, 64, 65, 1000,
                                                   1023));

// ------------------------------------------------------- Stratified sweep

// Param: (strata, total sample, seed).
using StratParam = std::tuple<size_t, size_t, uint64_t>;

class StratifiedProperty : public ::testing::TestWithParam<StratParam> {};

TEST_P(StratifiedProperty, ExpansionEstimatorUnbiased) {
  auto [strata, total, seed] = GetParam();
  Rng rng(seed);
  std::vector<double> totals(40);
  for (double& x : totals) x = rng.UniformRange(1.0, 50.0);
  double truth = 0.0;
  for (double x : totals) truth += x;
  Result<StratifiedPlan> plan = BuildStratifiedPlan(totals, strata, total);
  ASSERT_TRUE(plan.ok());
  RunningStats means;
  for (int rep = 0; rep < 4000; ++rep) {
    Result<StratifiedSample> sample = DrawStratifiedSample(*plan, &rng);
    ASSERT_TRUE(sample.ok());
    double est = 0.0;
    for (size_t d = 0; d < sample->chosen.size(); ++d) {
      est += totals[sample->chosen[d]] * sample->expansion[d];
    }
    means.Add(est);
  }
  EXPECT_NEAR(means.mean(), truth, truth * 0.03)
      << "strata=" << strata << " total=" << total;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StratifiedProperty,
    ::testing::Combine(::testing::Values<size_t>(1, 3, 5),
                       ::testing::Values<size_t>(6, 15),
                       ::testing::Values<uint64_t>(5, 71)));

// ------------------------------------------------------------ EM determinism

class EmDeterminismProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EmDeterminismProperty, SameSeedSamePicks) {
  uint64_t seed = GetParam();
  std::vector<double> props{0.4, 0.3, 0.2, 0.05, 0.05};
  EmSamplerOptions opts;
  opts.epsilon = 0.5;
  opts.n_min = 4;
  Rng a(seed), b(seed);
  Result<EmSample> sa = EmSampleClusters(props, 8, opts, &a);
  Result<EmSample> sb = EmSampleClusters(props, 8, opts, &b);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_EQ(sa->chosen, sb->chosen);
  EXPECT_EQ(sa->pps, sb->pps);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EmDeterminismProperty,
                         ::testing::Values<uint64_t>(1, 42, 9999));

}  // namespace
}  // namespace fedaqp
