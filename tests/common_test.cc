// Unit tests for src/common: Status/Result, RNG, math helpers, byte codec.

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/math.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace fedaqp {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kBudgetExhausted, StatusCode::kProtocolError,
        StatusCode::kInternal, StatusCode::kNotSupported}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

// ---------------------------------------------------------------- Result --

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = Half(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.value_or(-1), 5);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Half(3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Chain(int x) {
  FEDAQP_ASSIGN_OR_RETURN(int h, Half(x));
  return h + 1;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Chain(4), 3);
  EXPECT_FALSE(Chain(5).ok());
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoublePositiveNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.UniformDoublePositive(), 0.0);
  }
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(11);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(RngTest, UniformU64CoversRange) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformU64(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(17);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, ExponentialMeanApproxOne) {
  Rng rng(19);
  RunningStats st;
  for (int i = 0; i < 50000; ++i) st.Add(rng.Exponential());
  EXPECT_NEAR(st.mean(), 1.0, 0.05);
}

TEST(RngTest, NormalMomentsApproxStandard) {
  Rng rng(23);
  RunningStats st;
  for (int i = 0; i < 50000; ++i) st.Add(rng.Normal());
  EXPECT_NEAR(st.mean(), 0.0, 0.05);
  EXPECT_NEAR(st.stddev(), 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, BernoulliDegenerateEndpoints) {
  Rng rng(31);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, WeightedIndexTracksWeights) {
  Rng rng(41);
  std::vector<double> w{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) counts[rng.WeightedIndex(w)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, WeightedIndexSkipsZeroWeights) {
  Rng rng(43);
  std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.WeightedIndex(w), 1u);
}

TEST(RngTest, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(47);
  std::vector<double> w{0.0, 0.0, 0.0};
  std::set<size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.WeightedIndex(w));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, SplitProducesIndependentStreams) {
  Rng parent(53);
  Rng c1 = parent.Split(1);
  Rng c2 = parent.Split(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.NextU64() == c2.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// ------------------------------------------------------------------ Math --

TEST(MathTest, KahanSumHandlesSmallAndLargeTerms) {
  KahanSum s;
  s.Add(1e16);
  for (int i = 0; i < 10; ++i) s.Add(1.0);
  s.Add(-1e16);
  EXPECT_DOUBLE_EQ(s.Value(), 10.0);
  EXPECT_EQ(s.count(), 12u);
}

TEST(MathTest, KahanReset) {
  KahanSum s;
  s.Add(5.0);
  s.Reset();
  EXPECT_EQ(s.Value(), 0.0);
  EXPECT_EQ(s.count(), 0u);
}

TEST(MathTest, RunningStatsBasics) {
  RunningStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.Add(x);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.stddev(), 2.138, 1e-3);
  EXPECT_EQ(st.min(), 2.0);
  EXPECT_EQ(st.max(), 9.0);
  EXPECT_EQ(st.count(), 8u);
}

TEST(MathTest, RunningStatsDegenerate) {
  RunningStats st;
  EXPECT_EQ(st.mean(), 0.0);
  EXPECT_EQ(st.variance(), 0.0);
  st.Add(3.0);
  EXPECT_EQ(st.variance(), 0.0);
  EXPECT_EQ(st.mean(), 3.0);
}

TEST(MathTest, MeanMedianPercentile) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 3.0);
  EXPECT_DOUBLE_EQ(Median(v), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25.0), 2.0);
}

TEST(MathTest, EmptyVectorsAreZero) {
  std::vector<double> v;
  EXPECT_EQ(Mean(v), 0.0);
  EXPECT_EQ(StdDev(v), 0.0);
  EXPECT_EQ(Median(v), 0.0);
  EXPECT_EQ(Percentile(v, 50.0), 0.0);
}

TEST(MathTest, RelativeErrorDefinition) {
  EXPECT_DOUBLE_EQ(RelativeError(100.0, 90.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(100.0, 110.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(-50.0, -60.0), 0.2);
  // Zero answer falls back to absolute error.
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 3.0), 3.0);
}

TEST(MathTest, ClampAndApproxEqual) {
  EXPECT_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(ApproxEqual(1.0, 1.001));
  EXPECT_TRUE(ApproxEqual(1e12, 1e12 + 1.0, 1e-9));
}

// ----------------------------------------------------------------- Bytes --

TEST(BytesTest, RoundTripAllTypes) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI64(-42);
  w.PutDouble(3.14159);
  w.PutString("hello");

  ByteReader r(w.bytes());
  EXPECT_EQ(*r.GetU8(), 0xAB);
  EXPECT_EQ(*r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*r.GetI64(), -42);
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 3.14159);
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, TruncatedReadsFail) {
  ByteWriter w;
  w.PutU32(7);
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.GetU64().status().code() == StatusCode::kOutOfRange);
}

TEST(BytesTest, TruncatedStringFails) {
  ByteWriter w;
  w.PutU32(100);  // claims 100 bytes follow, none do
  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetString().status().code(), StatusCode::kOutOfRange);
}

TEST(BytesTest, SpecialDoublesSurvive) {
  ByteWriter w;
  w.PutDouble(-0.0);
  w.PutDouble(std::numeric_limits<double>::infinity());
  w.PutDouble(1e-300);
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.GetDouble(), 0.0);
  EXPECT_TRUE(std::isinf(*r.GetDouble()));
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 1e-300);
}

}  // namespace
}  // namespace fedaqp
