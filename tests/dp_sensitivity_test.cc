// Tests for the paper's closed-form sensitivities and the smooth
// sensitivity framework (Theorems 5.1-5.4, Appendices A and B).

#include <cmath>

#include <gtest/gtest.h>

#include "dp/sensitivity.h"
#include "dp/smooth_sensitivity.h"

namespace fedaqp {
namespace {

// ------------------------------------------------------------ Closed-form --

TEST(SensitivityTest, DeltaRFormula) {
  // Delta_R = 1 - (1 - 1/S)^{|D_Q|}.
  EXPECT_DOUBLE_EQ(DeltaR(100, 1), 1.0 - std::pow(0.99, 1));
  EXPECT_DOUBLE_EQ(DeltaR(100, 4), 1.0 - std::pow(0.99, 4));
  EXPECT_DOUBLE_EQ(DeltaR(2, 2), 1.0 - 0.25);
}

TEST(SensitivityTest, DeltaRBounds) {
  // Monotone in dims, bounded by (0, 1], ~|D|/S for large S.
  EXPECT_LT(DeltaR(1000, 1), DeltaR(1000, 2));
  EXPECT_LT(DeltaR(1000, 2), DeltaR(1000, 8));
  EXPECT_GT(DeltaR(10, 1), 0.0);
  EXPECT_LE(DeltaR(10, 100), 1.0);
  EXPECT_NEAR(DeltaR(100000, 3), 3.0 / 100000.0, 1e-7);
}

TEST(SensitivityTest, DeltaRDegenerateInputs) {
  EXPECT_DOUBLE_EQ(DeltaR(100, 0), 0.0);   // no constrained dims
  EXPECT_DOUBLE_EQ(DeltaR(0, 3), 1.0);     // guarded capacity
}

TEST(SensitivityTest, DeltaRExceedsPointMass) {
  // Appendix A.1 argues 1-(1-1/S)^{|D|} >= 1/S^{|D|} for S >> D; this is
  // why the formula is the safe (larger) bound.
  for (size_t s : {10u, 100u, 1000u}) {
    for (size_t d : {1u, 2u, 4u}) {
      // d=1 is the equality case; allow floating-point slack there.
      EXPECT_GE(DeltaR(s, d) + 1e-12,
                std::pow(1.0 / static_cast<double>(s),
                         static_cast<double>(d)));
    }
  }
}

TEST(SensitivityTest, DeltaAvgRTakesMax) {
  // Delta_Avg(R) = max(Delta_R / N_min, 1/(N_min + 1)).
  // Tiny S and dims=2: Delta_R = 0.75, so the first branch (0.375) beats
  // 1/(N_min+1) = 1/3.
  EXPECT_DOUBLE_EQ(DeltaAvgR(2, 2, 2), DeltaR(2, 2) / 2.0);
  // Large S: Delta_R tiny -> second branch wins.
  EXPECT_DOUBLE_EQ(DeltaAvgR(100000, 1, 4), 1.0 / 5.0);
}

TEST(SensitivityTest, DeltaAvgRGuardsZeroNmin) {
  EXPECT_GT(DeltaAvgR(100, 2, 0), 0.0);
}

TEST(SensitivityTest, DeltaPFormula) {
  EXPECT_DOUBLE_EQ(DeltaP(2), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(DeltaP(4), 1.0 / 20.0);
  EXPECT_DOUBLE_EQ(DeltaP(10), 1.0 / 110.0);
}

TEST(SensitivityTest, DeltaPDecreasesWithNmin) {
  EXPECT_GT(DeltaP(2), DeltaP(3));
  EXPECT_GT(DeltaP(3), DeltaP(100));
}

TEST(SensitivityTest, DeltaNQIsOne) { EXPECT_DOUBLE_EQ(DeltaNQ(), 1.0); }

// ----------------------------------------------------- Smooth sensitivity --

TEST(SmoothSensitivityTest, CreateValidatesInputs) {
  EXPECT_TRUE(SmoothSensitivity::Create(1.0, 1e-3).ok());
  EXPECT_FALSE(SmoothSensitivity::Create(0.0, 1e-3).ok());
  EXPECT_FALSE(SmoothSensitivity::Create(1.0, 0.0).ok());
  EXPECT_FALSE(SmoothSensitivity::Create(1.0, 1.0).ok());
}

TEST(SmoothSensitivityTest, BetaFormula) {
  Result<SmoothSensitivity> f = SmoothSensitivity::Create(0.8, 1e-3);
  ASSERT_TRUE(f.ok());
  EXPECT_NEAR(f->beta(), 0.8 / (2.0 * std::log(2.0 / 1e-3)), 1e-12);
}

TEST(SmoothSensitivityTest, MaxStepsMatchesAppendixB3) {
  Result<SmoothSensitivity> f = SmoothSensitivity::Create(0.8, 1e-3);
  ASSERT_TRUE(f.ok());
  double expected = 1.0 / (1.0 - std::exp(-f->beta())) + 1.0;
  EXPECT_GE(static_cast<double>(f->MaxSteps()) + 1.0, expected);
  EXPECT_LE(static_cast<double>(f->MaxSteps()), expected + 2.0);
}

TEST(SmoothSensitivityTest, ComputeMatchesExhaustiveSearch) {
  Result<SmoothSensitivity> f = SmoothSensitivity::Create(1.0, 1e-2);
  ASSERT_TRUE(f.ok());
  auto ls = [](size_t k) { return static_cast<double>(k) * 2.5; };
  double via_compute = f->Compute(ls);
  double best = 0.0;
  for (size_t k = 0; k <= f->MaxSteps(); ++k) {
    best = std::max(best, std::exp(-f->beta() * k) * ls(k));
  }
  EXPECT_DOUBLE_EQ(via_compute, best);
}

TEST(SmoothSensitivityTest, ComputeLinearMatchesCompute) {
  for (double eps : {0.1, 0.5, 1.0}) {
    for (double delta : {1e-2, 1e-4}) {
      Result<SmoothSensitivity> f = SmoothSensitivity::Create(eps, delta);
      ASSERT_TRUE(f.ok());
      for (double slope : {0.5, 3.0, 100.0}) {
        double expected =
            f->Compute([slope](size_t k) { return slope * k; });
        EXPECT_NEAR(f->ComputeLinear(slope), expected,
                    1e-9 * std::max(1.0, expected))
            << "eps=" << eps << " delta=" << delta << " slope=" << slope;
      }
    }
  }
}

TEST(SmoothSensitivityTest, ComputeLinearZeroSlope) {
  Result<SmoothSensitivity> f = SmoothSensitivity::Create(1.0, 1e-3);
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ(f->ComputeLinear(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f->ComputeLinear(-1.0), 0.0);
}

TEST(SmoothSensitivityTest, SmoothBoundDominatesLocalSensitivity) {
  // S_LS >= e^{-beta*1} * LS^1, i.e. the smooth bound is at least the
  // discounted distance-1 local sensitivity.
  Result<SmoothSensitivity> f = SmoothSensitivity::Create(0.8, 1e-3);
  ASSERT_TRUE(f.ok());
  double slope = 7.0;
  EXPECT_GE(f->ComputeLinear(slope), std::exp(-f->beta()) * slope);
}

TEST(SmoothSensitivityTest, NoiseScaleIsTwoOverEps) {
  Result<SmoothSensitivity> f = SmoothSensitivity::Create(0.8, 1e-3);
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ(f->NoiseScale(5.0), 2.0 * 5.0 / 0.8);
}

// ------------------------------------------ Estimator scenarios (Thm 5.4) --

EstimatorClusterState MakeState(double q_c, double r, double sum_r,
                                double delta_r, double p) {
  EstimatorClusterState s;
  s.cluster_result = q_c;
  s.proportion = r;
  s.sum_proportions = sum_r;
  s.delta_r = delta_r;
  s.sampling_probability = p;
  return s;
}

TEST(EstimatorScenarioTest, DominanceFollowsTheorem54) {
  // Scenario 1 iff Q(C) > sum_R / Delta_R.
  EstimatorClusterState big = MakeState(1000.0, 0.5, 2.0, 0.01, 0.25);
  EXPECT_EQ(DominantScenario(big), EstimatorScenario::kScenario1);
  EstimatorClusterState small = MakeState(10.0, 0.5, 2.0, 0.01, 0.25);
  EXPECT_EQ(DominantScenario(small), EstimatorScenario::kScenario4);
}

TEST(EstimatorScenarioTest, SlopesMatchAppendixB2) {
  EstimatorClusterState s1 = MakeState(1000.0, 0.5, 2.0, 0.01, 0.25);
  // Scenario 1: Q(C) * Delta_R / R = 1000 * 0.01 / 0.5 = 20.
  EXPECT_DOUBLE_EQ(EstimatorLocalSlope(s1), 20.0);
  EstimatorClusterState s4 = MakeState(10.0, 0.5, 2.0, 0.01, 0.25);
  // Scenario 4: 1/p = 4.
  EXPECT_DOUBLE_EQ(EstimatorLocalSlope(s4), 4.0);
}

TEST(EstimatorScenarioTest, DegenerateClustersContributeNothing) {
  EXPECT_DOUBLE_EQ(EstimatorLocalSlope(MakeState(100.0, 0.0, 2.0, 0.5, 0.0)),
                   0.0);
  EXPECT_DOUBLE_EQ(EstimatorLocalSlope(MakeState(0.0, 0.1, 2.0, 0.0, 0.0)),
                   0.0);
}

TEST(EstimatorScenarioTest, SmoothSensitivityPositiveForRealClusters) {
  Result<SmoothSensitivity> f = SmoothSensitivity::Create(0.8, 1e-3);
  ASSERT_TRUE(f.ok());
  EstimatorClusterState s = MakeState(50.0, 0.2, 1.5, 0.02, 0.1);
  EXPECT_GT(EstimatorSmoothSensitivity(*f, s), 0.0);
}

TEST(EstimatorScenarioTest, TighterDeltaGivesLargerSmoothBound) {
  // Smaller delta -> smaller beta -> slower decay -> the max over k grows.
  EstimatorClusterState s = MakeState(50.0, 0.2, 1.5, 0.02, 0.1);
  Result<SmoothSensitivity> loose = SmoothSensitivity::Create(0.8, 1e-2);
  Result<SmoothSensitivity> tight = SmoothSensitivity::Create(0.8, 1e-6);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(tight.ok());
  EXPECT_GT(EstimatorSmoothSensitivity(*tight, s),
            EstimatorSmoothSensitivity(*loose, s));
}

}  // namespace
}  // namespace fedaqp
