// Tests for the execution layer: thread pool, provider endpoints, the
// parallel orchestrator phases (determinism + cost aggregation), and the
// multi-analyst QueryEngine session layer.

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/federation.h"
#include "dp/accountant.h"
#include "exec/in_process_endpoint.h"
#include "exec/query_engine.h"
#include "exec/thread_pool.h"
#include "federation/orchestrator.h"
#include "federation/progressive.h"
#include "storage/sharded_scan_executor.h"
#include "workload/datagen.h"

namespace fedaqp {
namespace {

// --------------------------------------------------------------- ThreadPool --

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ParallelFor(&pool, kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForRunsInlineWithoutPool) {
  std::vector<int> hits(64, 0);  // unsynchronized: must run on this thread
  const std::thread::id self = std::this_thread::get_id();
  ParallelFor(nullptr, hits.size(), [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), self);
    hits[i] += 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingle) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(&pool, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(&pool, 1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForUsesWorkerThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  ParallelFor(&pool, 64, [&](size_t) {
    // Enough work per index that helpers get a chance to claim some.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_GE(seen.size(), 2u);
}

TEST(ThreadPoolTest, SubmitExecutesTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(done.load(), 10);
}

// Stress for the pool-sharing design: shard tasks submit nested
// ParallelFor work onto the SAME bounded pool the outer orchestrator
// phases occupy. The dispenser design must complete every index without
// deadlock — the nested caller drains its own range even when every
// worker is busy — including with extra unrelated tasks in flight.
TEST(ThreadPoolTest, NestedSubmissionFromShardTasksDoesNotDeadlock) {
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 16;
  std::atomic<int> background{0};
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h.store(0);
  {
    ThreadPool pool(2);  // deliberately smaller than the outer fan-out
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&background] { background.fetch_add(1); });
    }
    ParallelFor(&pool, kOuter, [&](size_t o) {
      // Each "endpoint phase" fans its own shard work out on the shared
      // pool, exactly how sharded provider scans nest under orchestration.
      ShardedScanExecutor exec(4, &pool);
      exec.ForEachShard(kInner, [&](size_t, ShardRange range) {
        for (size_t i = range.begin; i < range.end; ++i) {
          hits[o * kInner + i].fetch_add(1);
        }
      });
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
    // Destructor drains the unrelated queued tasks before joining.
  }
  EXPECT_EQ(background.load(), 16);
}

// ------------------------------------------------------ ShardedScanExecutor --

// A throwing shard must not leak into the pool (whose tasks must not
// throw) nor be swallowed: the first exception in shard order reaches the
// caller after every shard completed.
TEST(ShardedScanExecutorTest, ShardExceptionPropagatesToCaller) {
  ThreadPool pool(3);
  ShardedScanExecutor exec(4, &pool);
  std::atomic<int> completed{0};
  try {
    exec.ForEachShard(16, [&](size_t shard, ShardRange) {
      if (shard == 2 || shard == 1) {
        throw std::runtime_error("shard " + std::to_string(shard) + " failed");
      }
      completed.fetch_add(1);
    });
    FAIL() << "expected the shard exception to propagate";
  } catch (const std::runtime_error& e) {
    // Shard order, not completion order: shard 1 wins over shard 2.
    EXPECT_STREQ(e.what(), "shard 1 failed");
  }
  // The healthy shards all ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 2);
}

TEST(ShardedScanExecutorTest, InlineWithoutPoolAndEmptyDomain) {
  ShardedScanExecutor exec(5, nullptr);
  int calls = 0;
  std::vector<double> seconds =
      exec.ForEachShard(0, [&](size_t, ShardRange) { ++calls; });
  EXPECT_TRUE(seconds.empty());
  EXPECT_EQ(calls, 0);
  seconds = exec.ForEachShard(3, [&](size_t, ShardRange r) {
    calls += static_cast<int>(r.size());
  });
  EXPECT_EQ(seconds.size(), 3u);  // never more shards than items
  EXPECT_EQ(calls, 3);
}

// The merge rule for per-shard wall times is max (shards run in parallel
// in the deployment), never sum — the intra-provider analogue of the
// documented max-across-providers breakdown semantics.
TEST(ShardedScanExecutorTest, ShardSecondsMergeAsMaxNotSum) {
  ShardedScanExecutor exec(3, nullptr);  // inline: per-shard times still real
  std::vector<double> seconds =
      exec.ForEachShard(3, [&](size_t shard, ShardRange) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5 * (shard + 1)));
      });
  ASSERT_EQ(seconds.size(), 3u);
  double total = seconds[0] + seconds[1] + seconds[2];
  double merged = ShardedScanExecutor::MaxSeconds(seconds);
  EXPECT_GE(merged, seconds[2] * 0.5);  // tracks the slowest shard
  EXPECT_LT(merged, total);             // and is strictly below the sum
  EXPECT_EQ(merged, *std::max_element(seconds.begin(), seconds.end()));
}

// ------------------------------------------------------------ AnalystLedger --

TEST(AnalystLedgerTest, RegisterChargeAndExhaust) {
  AnalystLedger ledger;
  ASSERT_TRUE(ledger.Register("alice", 2.5, 1.0).ok());
  PrivacyBudget query{1.0, 0.25};
  EXPECT_TRUE(ledger.Charge("alice", query).ok());
  EXPECT_TRUE(ledger.Charge("alice", query).ok());
  Status third = ledger.Charge("alice", query);
  EXPECT_EQ(third.code(), StatusCode::kBudgetExhausted);
  Result<PrivacyBudget> spent = ledger.Spent("alice");
  ASSERT_TRUE(spent.ok());
  EXPECT_DOUBLE_EQ(spent->epsilon, 2.0);
  EXPECT_DOUBLE_EQ(spent->delta, 0.5);
}

TEST(AnalystLedgerTest, IndependentGrants) {
  AnalystLedger ledger;
  ASSERT_TRUE(ledger.Register("alice", 1.0, 1.0).ok());
  ASSERT_TRUE(ledger.Register("bob", 10.0, 1.0).ok());
  PrivacyBudget query{1.0, 0.0};
  EXPECT_TRUE(ledger.Charge("alice", query).ok());
  EXPECT_FALSE(ledger.Charge("alice", query).ok());
  // Alice's exhaustion must not affect Bob.
  EXPECT_TRUE(ledger.Charge("bob", query).ok());
  Result<PrivacyBudget> remaining = ledger.Remaining("bob");
  ASSERT_TRUE(remaining.ok());
  EXPECT_DOUBLE_EQ(remaining->epsilon, 9.0);
}

TEST(AnalystLedgerTest, RejectsDuplicatesAndUnknowns) {
  AnalystLedger ledger;
  ASSERT_TRUE(ledger.Register("alice", 1.0, 1.0).ok());
  EXPECT_FALSE(ledger.Register("alice", 5.0, 1.0).ok());
  EXPECT_FALSE(ledger.Register("", 1.0, 1.0).ok());
  EXPECT_FALSE(ledger.Register("eve", 0.0, 1.0).ok());
  EXPECT_EQ(ledger.Charge("mallory", {0.1, 0.0}).code(), StatusCode::kNotFound);
  EXPECT_FALSE(ledger.Remaining("mallory").ok());
  EXPECT_TRUE(ledger.Knows("alice"));
  EXPECT_FALSE(ledger.Knows("mallory"));
  EXPECT_EQ(ledger.Analysts(), std::vector<std::string>{"alice"});
}

// ----------------------------------------------------------------- Fixtures --

std::unique_ptr<DataProvider> MakeProvider(size_t rows, uint64_t seed,
                                           size_t capacity = 128,
                                           size_t n_min = 4) {
  SyntheticConfig cfg;
  cfg.rows = rows;
  cfg.seed = seed;
  cfg.dims = {{"a", 200, DistributionKind::kNormal, 0.5},
              {"b", 100, DistributionKind::kZipf, 1.2}};
  Result<Table> t = GenerateSynthetic(cfg);
  EXPECT_TRUE(t.ok());
  Result<Table> tensor = t->BuildCountTensor({0, 1});
  EXPECT_TRUE(tensor.ok());
  DataProvider::Options popts;
  popts.storage.cluster_capacity = capacity;
  popts.storage.layout = ClusterLayout::kShuffled;
  popts.storage.shuffle_seed = seed;
  popts.n_min = n_min;
  popts.seed = seed * 3 + 1;
  Result<std::unique_ptr<DataProvider>> p =
      DataProvider::Create(*tensor, popts);
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

std::vector<std::unique_ptr<DataProvider>> MakeFederation(size_t providers) {
  std::vector<std::unique_ptr<DataProvider>> out;
  for (size_t i = 0; i < providers; ++i) {
    out.push_back(MakeProvider(6000, 101 + 13 * i));
  }
  return out;
}

std::vector<DataProvider*> Ptrs(
    std::vector<std::unique_ptr<DataProvider>>& providers) {
  std::vector<DataProvider*> out;
  for (auto& p : providers) out.push_back(p.get());
  return out;
}

FederationConfig BaseConfig(size_t num_threads) {
  FederationConfig config;
  config.per_query_budget = {1.0, 1e-3};
  config.sampling_rate = 0.3;
  config.total_xi = 1e6;
  config.total_psi = 1e3;
  config.seed = 4242;
  config.num_threads = num_threads;
  return config;
}

RangeQuery WideQuery() {
  return RangeQueryBuilder(Aggregation::kSum).Where(0, 20, 180).Build();
}

// --------------------------------------------------------- InProcessEndpoint --

TEST(InProcessEndpointTest, InfoMirrorsProvider) {
  std::unique_ptr<DataProvider> p = MakeProvider(3000, 7);
  InProcessEndpoint endpoint(p.get());
  EXPECT_EQ(endpoint.info().name, p->name());
  EXPECT_EQ(endpoint.info().cluster_capacity, 128u);
  EXPECT_EQ(endpoint.info().n_min, 4u);
  EXPECT_TRUE(endpoint.info().schema == p->store().schema());
}

TEST(InProcessEndpointTest, SessionLifecycle) {
  std::unique_ptr<DataProvider> p = MakeProvider(3000, 7);
  InProcessEndpoint endpoint(p.get());
  RangeQuery q = WideQuery();

  // Phase calls without a session are refused.
  SummaryRequest summary_req;
  summary_req.query_id = 9;
  summary_req.eps_allocation = 0.3;
  EXPECT_EQ(endpoint.PublishSummary(summary_req).status().code(),
            StatusCode::kFailedPrecondition);

  Result<CoverReply> cover = endpoint.Cover(CoverRequest{9, 77, q});
  ASSERT_TRUE(cover.ok());
  EXPECT_GT(cover->num_covering_clusters, 0u);
  EXPECT_TRUE(cover->should_approximate);
  EXPECT_TRUE(endpoint.PublishSummary(summary_req).ok());

  ApproximateRequest approx_req;
  approx_req.query_id = 9;
  approx_req.sample_size = 3;
  approx_req.eps_sampling = 0.2;
  approx_req.eps_estimate = 0.5;
  approx_req.delta = 1e-3;
  approx_req.add_noise = true;
  EXPECT_TRUE(endpoint.Approximate(approx_req).ok());

  // Ending the session invalidates further phase calls for that id.
  endpoint.EndQuery(9);
  EXPECT_EQ(endpoint.Approximate(approx_req).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(InProcessEndpointTest, ExactFullScanMatchesProvider) {
  std::unique_ptr<DataProvider> p = MakeProvider(3000, 7);
  InProcessEndpoint endpoint(p.get());
  RangeQuery q = WideQuery();
  Result<ExactScanReply> scan = endpoint.ExactFullScan(ExactScanRequest{q});
  ASSERT_TRUE(scan.ok());
  EXPECT_DOUBLE_EQ(scan->value,
                   static_cast<double>(p->store().EvaluateExact(q)));
  EXPECT_GT(scan->work.rows_scanned, 0u);
}

// Endpoints are shared_ptrs a caller may keep past the orchestrator that
// lent them its scan pool; teardown must detach the pool (shards fall
// back inline) instead of leaving the endpoints scanning through a dead
// pointer.
TEST(InProcessEndpointTest, EndpointSurvivesOrchestratorTeardown) {
  auto providers = MakeFederation(2);
  Result<std::vector<std::shared_ptr<ProviderEndpoint>>> endpoints =
      MakeInProcessEndpoints(Ptrs(providers));
  ASSERT_TRUE(endpoints.ok());
  double pooled_value = 0.0;
  {
    FederationConfig config = BaseConfig(/*num_threads=*/4);
    config.num_scan_shards = 4;
    Result<QueryOrchestrator> orch =
        QueryOrchestrator::CreateFromEndpoints(*endpoints, config);
    ASSERT_TRUE(orch.ok());
    Result<QueryResponse> resp = orch->ExecuteExact(WideQuery());
    ASSERT_TRUE(resp.ok());
    pooled_value = resp->estimate;
  }  // orchestrator (and its pool) destroyed here
  Result<ExactScanReply> scan =
      (*endpoints)[0]->ExactFullScan(ExactScanRequest{WideQuery()});
  ASSERT_TRUE(scan.ok());
  Result<ExactScanReply> other =
      (*endpoints)[1]->ExactFullScan(ExactScanRequest{WideQuery()});
  ASSERT_TRUE(other.ok());
  EXPECT_DOUBLE_EQ(scan->value + other->value, pooled_value);
}

// The reverse teardown order: providers may die before the orchestrator
// (the shell's `open` replaces the federation first, the orchestrator
// second). The orchestrator's destructor detaches endpoint scan pools and
// must not reach into the dead providers while doing so — with the
// default num_scan_shards=0 config, the detach's 0-fallback has to reuse
// the endpoint's cached shard count, not re-resolve provider options.
TEST(InProcessEndpointTest, OrchestratorOutlivingProvidersTearsDownSafely) {
  auto providers = MakeFederation(2);
  FederationConfig config = BaseConfig(/*num_threads=*/2);  // shards stay 0
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::Create(Ptrs(providers), config);
  ASSERT_TRUE(orch.ok());
  ASSERT_TRUE(orch->Execute(WideQuery()).ok());
  providers.clear();  // providers die first; `orch` is destroyed after
}

// ------------------------------------------------- Cost-aggregation (fakes) --

// A scripted endpoint: deterministic protocol messages with configurable
// per-phase compute charges. Exercises the orchestrator through the pure
// message interface, the way a remote backend would.
class FakeEndpoint : public ProviderEndpoint {
 public:
  FakeEndpoint(const std::string& name, const Schema& schema,
               double phase1_seconds, double phase2_seconds, double estimate)
      : phase1_seconds_(phase1_seconds),
        phase2_seconds_(phase2_seconds),
        estimate_(estimate) {
    info_.name = name;
    info_.schema = schema;
    info_.cluster_capacity = 64;
    info_.n_min = 4;
  }

  const EndpointInfo& info() const override { return info_; }

  Result<CoverReply> Cover(const CoverRequest&) override {
    CoverReply reply;
    reply.num_covering_clusters = 10;
    reply.should_approximate = true;
    // The cover half of phase 1; the summary half below adds the rest.
    reply.work.compute_seconds = phase1_seconds_ / 2.0;
    return reply;
  }

  Result<SummaryReply> PublishSummary(const SummaryRequest&) override {
    SummaryReply reply;
    reply.summary.noisy_avg_r = 0.5;
    reply.summary.noisy_n_q = 10.0;
    reply.summary.work.compute_seconds = phase1_seconds_ / 2.0;
    return reply;
  }

  Result<EstimateReply> Approximate(const ApproximateRequest&) override {
    EstimateReply reply;
    reply.estimate.estimate = estimate_;
    reply.estimate.variance = 1.0;
    reply.estimate.sensitivity = 1.0;
    reply.estimate.noised = true;
    reply.estimate.work.compute_seconds = phase2_seconds_;
    return reply;
  }

  Result<EstimateReply> ExactAnswer(const ExactAnswerRequest&) override {
    EstimateReply reply;
    reply.estimate.estimate = estimate_;
    reply.estimate.exact = true;
    reply.estimate.work.compute_seconds = phase2_seconds_;
    return reply;
  }

  Result<ExactScanReply> ExactFullScan(const ExactScanRequest&) override {
    ExactScanReply reply;
    reply.value = estimate_;
    reply.work.compute_seconds = phase2_seconds_;
    return reply;
  }

  void EndQuery(uint64_t) override {}

 private:
  EndpointInfo info_;
  double phase1_seconds_;
  double phase2_seconds_;
  double estimate_;
};

Schema FakeSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddDimension("a", 100).ok());
  return schema;
}

// Regression for the documented "max over providers (they work in
// parallel)" semantics: the breakdown must take the per-phase maximum, not
// the sum across providers.
TEST(OrchestratorCostTest, ProviderSecondsAreMaxedNotSummed) {
  Schema schema = FakeSchema();
  std::vector<std::shared_ptr<ProviderEndpoint>> endpoints = {
      std::make_shared<FakeEndpoint>("fast", schema, /*phase1=*/1.0,
                                     /*phase2=*/2.0, /*estimate=*/10.0),
      std::make_shared<FakeEndpoint>("slow", schema, /*phase1=*/3.0,
                                     /*phase2=*/0.5, /*estimate=*/20.0),
  };
  FederationConfig config = BaseConfig(/*num_threads=*/1);
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::CreateFromEndpoints(endpoints, config);
  ASSERT_TRUE(orch.ok());
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount).Where(0, 0, 50).Build();
  Result<QueryResponse> resp = orch->Execute(q);
  ASSERT_TRUE(resp.ok());
  // Phase maxima: summary max(1, 3) = 3, estimate max(2, 0.5) = 2. A
  // summing implementation would report 6.5.
  EXPECT_NEAR(resp->breakdown.provider_compute_seconds, 5.0, 1e-9);
  // The sum of scripted estimates survives combination.
  EXPECT_DOUBLE_EQ(resp->estimate, 30.0);

  Result<QueryResponse> exact = orch->ExecuteExact(q);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(exact->breakdown.provider_compute_seconds, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(exact->estimate, 30.0);
}

// A phase body that throws on a pool worker (e.g. a sharded scan
// rethrowing a shard failure) must surface as a per-query Status, never
// escape into the ThreadPool (whose tasks must not throw) and terminate.
class ThrowingEndpoint : public FakeEndpoint {
 public:
  ThrowingEndpoint(const std::string& name, const Schema& schema)
      : FakeEndpoint(name, schema, 0.0, 0.0, 1.0) {}
  Result<CoverReply> Cover(const CoverRequest&) override {
    throw std::runtime_error("shard 0 failed");
  }
};

TEST(OrchestratorCostTest, ThrowingEndpointBecomesStatusNotTerminate) {
  Schema schema = FakeSchema();
  std::vector<std::shared_ptr<ProviderEndpoint>> endpoints = {
      std::make_shared<FakeEndpoint>("ok", schema, 0.0, 0.0, 1.0),
      std::make_shared<ThrowingEndpoint>("boom", schema),
  };
  FederationConfig config = BaseConfig(/*num_threads=*/4);
  config.num_scan_shards = 2;
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::CreateFromEndpoints(endpoints, config);
  ASSERT_TRUE(orch.ok());
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount).Where(0, 0, 50).Build();
  Result<QueryResponse> resp = orch->Execute(q);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kInternal);
  EXPECT_NE(resp.status().ToString().find("shard 0 failed"), std::string::npos);
}

// ------------------------------------------------------ Determinism (pools) --

// Same seeds must give bit-identical answers for every pool size: the
// acceptance criterion of the parallel refactor.
TEST(ParallelDeterminismTest, OrchestratorIdenticalAcrossPoolSizes) {
  constexpr size_t kProviders = 4;
  const std::vector<size_t> pool_sizes = {1, 2, 8};
  std::vector<std::vector<double>> estimates_by_pool;
  for (size_t threads : pool_sizes) {
    auto providers = MakeFederation(kProviders);
    Result<QueryOrchestrator> orch =
        QueryOrchestrator::Create(Ptrs(providers), BaseConfig(threads));
    ASSERT_TRUE(orch.ok());
    std::vector<double> estimates;
    for (int rep = 0; rep < 3; ++rep) {
      Result<QueryResponse> resp = orch->Execute(WideQuery());
      ASSERT_TRUE(resp.ok());
      estimates.push_back(resp->estimate);
    }
    estimates_by_pool.push_back(std::move(estimates));
  }
  for (size_t i = 1; i < estimates_by_pool.size(); ++i) {
    for (size_t rep = 0; rep < estimates_by_pool[0].size(); ++rep) {
      EXPECT_DOUBLE_EQ(estimates_by_pool[0][rep], estimates_by_pool[i][rep])
          << "pool=" << pool_sizes[i] << " rep=" << rep;
    }
  }
}

TEST(ParallelDeterminismTest, EngineBatchIdenticalAcrossPoolSizes) {
  constexpr size_t kProviders = 4;
  const std::vector<size_t> pool_sizes = {1, 2, 8};

  // A mixed batch from two analysts, including an over-budget entry whose
  // refusal must also be stable.
  auto make_batch = [] {
    std::vector<AnalystQuery> batch;
    for (int i = 0; i < 3; ++i) {
      batch.push_back({"alice",
                       RangeQueryBuilder(Aggregation::kSum)
                           .Where(0, 20 + i, 180)
                           .Build()});
      batch.push_back({"bob",
                       RangeQueryBuilder(Aggregation::kCount)
                           .Where(0, 10, 150 - i)
                           .Build()});
    }
    return batch;
  };

  std::vector<std::vector<double>> estimates_by_pool;
  std::vector<std::vector<bool>> admitted_by_pool;
  for (size_t threads : pool_sizes) {
    auto providers = MakeFederation(kProviders);
    QueryEngineOptions opts;
    opts.protocol = BaseConfig(threads);
    opts.analysts = {{"alice", 1e6, 1e3}, {"bob", 2.5, 1.0}};
    Result<std::unique_ptr<QueryEngine>> engine =
        QueryEngine::Create(Ptrs(providers), opts);
    ASSERT_TRUE(engine.ok());
    std::vector<BatchOutcome> outcomes = (*engine)->ExecuteBatch(make_batch());
    std::vector<double> estimates;
    std::vector<bool> admitted;
    for (const auto& out : outcomes) {
      admitted.push_back(out.ok());
      estimates.push_back(out.ok() ? out.response.estimate : 0.0);
    }
    estimates_by_pool.push_back(std::move(estimates));
    admitted_by_pool.push_back(std::move(admitted));
  }
  for (size_t i = 1; i < estimates_by_pool.size(); ++i) {
    EXPECT_EQ(admitted_by_pool[0], admitted_by_pool[i]);
    for (size_t q = 0; q < estimates_by_pool[0].size(); ++q) {
      EXPECT_DOUBLE_EQ(estimates_by_pool[0][q], estimates_by_pool[i][q])
          << "pool=" << pool_sizes[i] << " query=" << q;
    }
  }
  // Bob's grant (xi = 2.5) admits exactly two of his three queries.
  size_t bob_admitted = 0;
  for (size_t q = 1; q < admitted_by_pool[0].size(); q += 2) {
    if (admitted_by_pool[0][q]) ++bob_admitted;
  }
  EXPECT_EQ(bob_admitted, 2u);
}

// Two coordinators over the same providers must not replay each other's
// noise: identical query ids with different orchestrator seeds have to
// yield different draws, else an analyst could difference the releases
// and cancel the DP noise.
TEST(ParallelDeterminismTest, DistinctOrchestratorSeedsDrawDistinctNoise) {
  auto providers = MakeFederation(2);
  FederationConfig c1 = BaseConfig(1);
  FederationConfig c2 = BaseConfig(1);
  c2.seed = c1.seed + 1;
  Result<QueryOrchestrator> o1 = QueryOrchestrator::Create(Ptrs(providers), c1);
  Result<QueryOrchestrator> o2 = QueryOrchestrator::Create(Ptrs(providers), c2);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  Result<QueryResponse> r1 = o1->Execute(WideQuery());
  Result<QueryResponse> r2 = o2->Execute(WideQuery());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_NE(r1->estimate, r2->estimate);
}

TEST(ParallelDeterminismTest, ProgressiveIdenticalAcrossPoolSizes) {
  const std::vector<size_t> pool_sizes = {1, 2, 8};
  std::vector<std::vector<double>> estimates_by_pool;
  for (size_t threads : pool_sizes) {
    auto providers = MakeFederation(3);
    ProgressiveOptions opts;
    opts.rounds = 3;
    opts.sampling_rate = 0.3;
    opts.num_threads = threads;
    Result<std::vector<ProgressiveRound>> rounds =
        ExecuteProgressive(Ptrs(providers), WideQuery(), opts);
    ASSERT_TRUE(rounds.ok());
    std::vector<double> estimates;
    for (const auto& round : *rounds) estimates.push_back(round.estimate);
    estimates_by_pool.push_back(std::move(estimates));
  }
  for (size_t i = 1; i < estimates_by_pool.size(); ++i) {
    ASSERT_EQ(estimates_by_pool[0].size(), estimates_by_pool[i].size());
    for (size_t r = 0; r < estimates_by_pool[0].size(); ++r) {
      EXPECT_DOUBLE_EQ(estimates_by_pool[0][r], estimates_by_pool[i][r])
          << "pool=" << pool_sizes[i] << " round=" << r;
    }
  }
}

// With intra-provider scan sharding enabled, the PR-1 guarantees must
// hold unchanged: answers bit-identical across pool sizes 1/2/8, across
// shard counts, and between batched and sequential execution.
TEST(ParallelDeterminismTest, ShardedScansIdenticalAcrossPoolAndShardCounts) {
  constexpr size_t kProviders = 3;
  const std::vector<size_t> pool_sizes = {1, 2, 8};
  const std::vector<size_t> shard_counts = {1, 2, 8};
  std::vector<RangeQuery> queries;
  for (int i = 0; i < 3; ++i) {
    queries.push_back(
        RangeQueryBuilder(Aggregation::kSum).Where(0, 18 + i, 175).Build());
  }

  std::vector<double> base_estimates;
  size_t base_rows = 0;
  for (size_t threads : pool_sizes) {
    for (size_t shards : shard_counts) {
      FederationConfig config = BaseConfig(threads);
      config.num_scan_shards = shards;
      auto providers = MakeFederation(kProviders);
      Result<QueryOrchestrator> orch =
          QueryOrchestrator::Create(Ptrs(providers), config);
      ASSERT_TRUE(orch.ok());
      std::vector<BatchOutcome> outcomes = orch->ExecuteBatch(queries);
      ASSERT_EQ(outcomes.size(), queries.size());
      std::vector<double> estimates;
      size_t rows = 0;
      for (const auto& out : outcomes) {
        ASSERT_TRUE(out.ok());
        estimates.push_back(out.response.estimate);
        rows += out.response.breakdown.rows_scanned;
      }
      if (base_estimates.empty()) {
        base_estimates = estimates;
        base_rows = rows;
        continue;
      }
      EXPECT_EQ(estimates, base_estimates)
          << "pool=" << threads << " shards=" << shards;
      // Deterministic work counters must not depend on the fan-out either.
      EXPECT_EQ(rows, base_rows) << "pool=" << threads << " shards=" << shards;
    }
  }

  // Batched-vs-sequential with sharding on: one-at-a-time on a sharded
  // single-thread twin reproduces the pooled sharded batch bit-for-bit.
  FederationConfig seq_config = BaseConfig(1);
  seq_config.num_scan_shards = 8;
  auto seq_providers = MakeFederation(kProviders);
  Result<QueryOrchestrator> seq =
      QueryOrchestrator::Create(Ptrs(seq_providers), seq_config);
  ASSERT_TRUE(seq.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<QueryResponse> resp = seq->Execute(queries[i]);
    ASSERT_TRUE(resp.ok());
    EXPECT_DOUBLE_EQ(resp->estimate, base_estimates[i]) << "query=" << i;
  }
}

// The shard count must never change how provider_compute_seconds is
// aggregated: per phase it is the max across providers (summed across the
// two barrier-separated phases), and enabling sharding only substitutes
// the per-provider term with its own max-over-shards — it must not flip
// any max into a sum. The scripted endpoints report fixed per-phase costs,
// so the breakdown is exact and shard-count-invariant.
TEST(OrchestratorCostTest, ShardCountDoesNotChangeProviderSecondsSemantics) {
  Schema schema = FakeSchema();
  for (size_t shards : {1u, 2u, 7u}) {
    std::vector<std::shared_ptr<ProviderEndpoint>> endpoints = {
        std::make_shared<FakeEndpoint>("fast", schema, /*phase1=*/1.0,
                                       /*phase2=*/2.0, /*estimate=*/10.0),
        std::make_shared<FakeEndpoint>("slow", schema, /*phase1=*/3.0,
                                       /*phase2=*/0.5, /*estimate=*/20.0),
    };
    FederationConfig config = BaseConfig(/*num_threads=*/2);
    config.num_scan_shards = shards;
    Result<QueryOrchestrator> orch =
        QueryOrchestrator::CreateFromEndpoints(endpoints, config);
    ASSERT_TRUE(orch.ok());
    RangeQuery q =
        RangeQueryBuilder(Aggregation::kCount).Where(0, 0, 50).Build();
    Result<QueryResponse> resp = orch->Execute(q);
    ASSERT_TRUE(resp.ok());
    // max(1,3) + max(2,0.5) = 5 for every shard count; a summing
    // implementation would drift with shards.
    EXPECT_NEAR(resp->breakdown.provider_compute_seconds, 5.0, 1e-9)
        << "shards=" << shards;
  }
}

// param-free guard: a batch through a pooled engine equals running the
// same queries one by one on a single-threaded twin.
TEST(ParallelDeterminismTest, BatchMatchesSequentialExecution) {
  constexpr size_t kProviders = 3;
  std::vector<RangeQuery> queries;
  for (int i = 0; i < 4; ++i) {
    queries.push_back(
        RangeQueryBuilder(Aggregation::kSum).Where(0, 15 + i, 170).Build());
  }

  auto seq_providers = MakeFederation(kProviders);
  Result<QueryOrchestrator> seq =
      QueryOrchestrator::Create(Ptrs(seq_providers), BaseConfig(1));
  ASSERT_TRUE(seq.ok());
  std::vector<double> sequential;
  for (const auto& q : queries) {
    Result<QueryResponse> resp = seq->Execute(q);
    ASSERT_TRUE(resp.ok());
    sequential.push_back(resp->estimate);
  }

  auto batch_providers = MakeFederation(kProviders);
  Result<QueryOrchestrator> batched =
      QueryOrchestrator::Create(Ptrs(batch_providers), BaseConfig(4));
  ASSERT_TRUE(batched.ok());
  std::vector<BatchOutcome> outcomes = batched->ExecuteBatch(queries);
  ASSERT_EQ(outcomes.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_TRUE(outcomes[q].ok());
    EXPECT_DOUBLE_EQ(outcomes[q].response.estimate, sequential[q]);
  }
}

// -------------------------------------------------------------- QueryEngine --

TEST(QueryEngineTest, UnknownAnalystIsRefusedWithoutProviderWork) {
  auto providers = MakeFederation(2);
  QueryEngineOptions opts;
  opts.protocol = BaseConfig(1);
  opts.analysts = {{"alice", 10.0, 1.0}};
  Result<std::unique_ptr<QueryEngine>> engine =
      QueryEngine::Create(Ptrs(providers), opts);
  ASSERT_TRUE(engine.ok());
  Result<QueryResponse> resp = (*engine)->Execute("mallory", WideQuery());
  EXPECT_EQ(resp.status().code(), StatusCode::kNotFound);
}

TEST(QueryEngineTest, InvalidQuerySpendsNoBudget) {
  auto providers = MakeFederation(2);
  QueryEngineOptions opts;
  opts.protocol = BaseConfig(1);
  opts.analysts = {{"alice", 10.0, 1.0}};
  Result<std::unique_ptr<QueryEngine>> engine =
      QueryEngine::Create(Ptrs(providers), opts);
  ASSERT_TRUE(engine.ok());
  RangeQuery bad = RangeQueryBuilder(Aggregation::kCount).Where(99, 0, 1).Build();
  EXPECT_FALSE((*engine)->Execute("alice", bad).ok());
  Result<PrivacyBudget> spent = (*engine)->ledger().Spent("alice");
  ASSERT_TRUE(spent.ok());
  EXPECT_DOUBLE_EQ(spent->epsilon, 0.0);
}

TEST(QueryEngineTest, PerAnalystBudgetsEnforcedWithinOneBatch) {
  auto providers = MakeFederation(2);
  QueryEngineOptions opts;
  opts.protocol = BaseConfig(2);
  opts.analysts = {{"alice", 1.5, 1.0}, {"bob", 1e6, 1e3}};
  Result<std::unique_ptr<QueryEngine>> engine =
      QueryEngine::Create(Ptrs(providers), opts);
  ASSERT_TRUE(engine.ok());

  std::vector<AnalystQuery> batch = {
      {"alice", WideQuery()},  // admitted (1.0 of 1.5)
      {"bob", WideQuery()},    // admitted
      {"alice", WideQuery()},  // refused: would exceed alice's xi
      {"bob", WideQuery()},    // admitted: bob unaffected
  };
  std::vector<BatchOutcome> outcomes = (*engine)->ExecuteBatch(batch);
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_TRUE(outcomes[1].ok());
  EXPECT_EQ(outcomes[2].status.code(), StatusCode::kBudgetExhausted);
  EXPECT_TRUE(outcomes[3].ok());

  Result<PrivacyBudget> alice = (*engine)->ledger().Spent("alice");
  ASSERT_TRUE(alice.ok());
  EXPECT_DOUBLE_EQ(alice->epsilon, 1.0);
  Result<PrivacyBudget> bob = (*engine)->ledger().Spent("bob");
  ASSERT_TRUE(bob.ok());
  EXPECT_DOUBLE_EQ(bob->epsilon, 2.0);
}

TEST(QueryEngineTest, LateRegistrationAdmitsNewAnalyst) {
  auto providers = MakeFederation(2);
  QueryEngineOptions opts;
  opts.protocol = BaseConfig(1);
  Result<std::unique_ptr<QueryEngine>> engine =
      QueryEngine::Create(Ptrs(providers), opts);
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE((*engine)->Execute("carol", WideQuery()).ok());
  ASSERT_TRUE((*engine)->RegisterAnalyst("carol", 10.0, 1.0).ok());
  EXPECT_TRUE((*engine)->Execute("carol", WideQuery()).ok());
}

TEST(QueryEngineTest, BatchResponsesCarryBreakdowns) {
  auto providers = MakeFederation(3);
  QueryEngineOptions opts;
  opts.protocol = BaseConfig(2);
  opts.analysts = {{"alice", 1e6, 1e3}};
  Result<std::unique_ptr<QueryEngine>> engine =
      QueryEngine::Create(Ptrs(providers), opts);
  ASSERT_TRUE(engine.ok());
  std::vector<AnalystQuery> batch = {{"alice", WideQuery()},
                                     {"alice", WideQuery()}};
  std::vector<BatchOutcome> outcomes = (*engine)->ExecuteBatch(batch);
  for (const auto& out : outcomes) {
    ASSERT_TRUE(out.ok());
    EXPECT_GT(out.response.breakdown.network_messages, 0u);
    EXPECT_GT(out.response.breakdown.rows_scanned, 0u);
    EXPECT_EQ(out.response.allocation.size(), 3u);
    EXPECT_TRUE(std::isfinite(out.response.estimate));
  }
}

// ------------------------------------------------------ Federation batching --

TEST(FederationBatchTest, QueryBatchChargesSharedAccountant) {
  SyntheticConfig cfg;
  cfg.rows = 8000;
  cfg.seed = 5;
  cfg.dims = {{"a", 60, DistributionKind::kNormal, 0.4},
              {"b", 40, DistributionKind::kUniform, 0.0}};
  Result<std::vector<Table>> parts = GenerateFederatedTensors(cfg, {0, 1}, 2);
  ASSERT_TRUE(parts.ok());
  FederationOptions fopts;
  fopts.cluster_capacity = 128;
  fopts.protocol.per_query_budget = {1.0, 1e-3};
  fopts.protocol.total_xi = 2.5;  // admits exactly two queries
  fopts.protocol.total_psi = 1.0;
  fopts.protocol.sampling_rate = 0.3;
  fopts.protocol.num_threads = 2;
  Result<std::unique_ptr<Federation>> fed =
      Federation::Open(std::move(parts).value(), fopts);
  ASSERT_TRUE(fed.ok());

  RangeQuery q = RangeQueryBuilder(Aggregation::kCount)
                     .Where(0, 5, 55)
                     .Where(1, 0, 30)
                     .Build();
  std::vector<BatchOutcome> outcomes = (*fed)->QueryBatch({q, q, q});
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_TRUE(outcomes[1].ok());
  EXPECT_EQ(outcomes[2].status.code(), StatusCode::kBudgetExhausted);
  EXPECT_EQ((*fed)->accountant().num_charges(), 2u);
}

}  // namespace
}  // namespace fedaqp
