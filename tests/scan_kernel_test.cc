// Bit-identity property suite for the vectorized scan kernels (S3): the
// AVX2 and scalar backends must agree bit-for-bit on every input — counts,
// sums and sums of squares, including wrapping overflow — across layouts,
// shard counts and scan profiles. Also covers the FEDAQP_FORCE_SCALAR
// escape hatch and the runtime dispatch plumbing.

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/thread_pool.h"
#include "storage/cluster_store.h"
#include "storage/scan_kernel.h"
#include "storage/table.h"

namespace fedaqp {
namespace {

/// Restores the dispatch cache (and FEDAQP_FORCE_SCALAR) after each test
/// so suites can run in any order.
class ScanKernelTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("FEDAQP_FORCE_SCALAR");
    SetScanBackend(ResolveScanBackend());
  }
};

ScanResult ScanWith(ScanBackend backend,
                    const std::vector<std::vector<Value>>& columns,
                    const std::vector<int64_t>& measures,
                    const std::vector<ColumnPredicate>& pred_template,
                    ScanProfile profile) {
  std::vector<ColumnPredicate> preds = pred_template;
  for (size_t p = 0; p < preds.size(); ++p) {
    preds[p].values = columns[p].data();
  }
  return ScanColumnsWithBackend(backend, preds.data(), preds.size(),
                                measures.data(), measures.size(), profile);
}

TEST_F(ScanKernelTest, BackendsBitIdenticalOnRandomInputs) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    // Odd sizes exercise the scalar tail; size 0..3 the all-tail case.
    const size_t n = static_cast<size_t>(rng.UniformU64(513));
    const size_t num_preds = 1 + static_cast<size_t>(rng.UniformU64(3));
    std::vector<std::vector<Value>> columns(num_preds);
    std::vector<ColumnPredicate> preds(num_preds);
    for (size_t p = 0; p < num_preds; ++p) {
      columns[p].resize(n);
      for (size_t i = 0; i < n; ++i) {
        columns[p][i] = rng.UniformInt(-50, 50);
      }
      const Value lo = rng.UniformInt(-60, 40);
      preds[p].lo = lo;
      preds[p].hi = lo + rng.UniformInt(0, 40);
    }
    std::vector<int64_t> measures(n);
    for (size_t i = 0; i < n; ++i) {
      measures[i] = rng.UniformInt(-1000000, 1000000);
    }
    for (ScanProfile profile :
         {ScanProfile::kCount, ScanProfile::kSum, ScanProfile::kSumSquares,
          ScanProfile::kAll}) {
      ScanResult scalar =
          ScanWith(ScanBackend::kScalar, columns, measures, preds, profile);
      ScanResult simd =
          ScanWith(ScanBackend::kAvx2, columns, measures, preds, profile);
      EXPECT_EQ(scalar.count, simd.count);
      EXPECT_EQ(scalar.sum, simd.sum);
      EXPECT_EQ(scalar.sum_squares, simd.sum_squares);
    }
  }
}

TEST_F(ScanKernelTest, BackendsAgreeUnderWrappingOverflow) {
  // Measures near the int64 extremes force the uint64 accumulators (and
  // the AVX2 Mul64Lo low-half product) to wrap; the backends must wrap to
  // the same bits.
  Rng rng(7);
  const size_t n = 1001;
  std::vector<std::vector<Value>> columns(1);
  columns[0].assign(n, 0);
  std::vector<int64_t> measures(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t bits = rng.NextU64();
    measures[i] = static_cast<int64_t>(bits);
  }
  std::vector<ColumnPredicate> preds(1);
  preds[0].lo = 0;
  preds[0].hi = 0;
  ScanResult scalar =
      ScanWith(ScanBackend::kScalar, columns, measures, preds,
               ScanProfile::kAll);
  ScanResult simd = ScanWith(ScanBackend::kAvx2, columns, measures, preds,
                             ScanProfile::kAll);
  EXPECT_EQ(scalar.count, static_cast<int64_t>(n));
  EXPECT_EQ(scalar.sum, simd.sum);
  EXPECT_EQ(scalar.sum_squares, simd.sum_squares);
}

TEST_F(ScanKernelTest, ProfilesZeroTheAggregatesOutsideThem) {
  std::vector<std::vector<Value>> columns = {{1, 2, 3, 4, 5}};
  std::vector<int64_t> measures = {10, 20, 30, 40, 50};
  std::vector<ColumnPredicate> preds(1);
  preds[0].lo = 2;
  preds[0].hi = 4;
  for (ScanBackend backend : {ScanBackend::kScalar, ScanBackend::kAvx2}) {
    ScanResult count =
        ScanWith(backend, columns, measures, preds, ScanProfile::kCount);
    EXPECT_EQ(count.count, 3);
    EXPECT_EQ(count.sum, 0);
    EXPECT_EQ(count.sum_squares, 0);
    ScanResult sum =
        ScanWith(backend, columns, measures, preds, ScanProfile::kSum);
    EXPECT_EQ(sum.count, 3);
    EXPECT_EQ(sum.sum, 90);
    EXPECT_EQ(sum.sum_squares, 0);
    ScanResult ss =
        ScanWith(backend, columns, measures, preds, ScanProfile::kSumSquares);
    EXPECT_EQ(ss.sum_squares, 400 + 900 + 1600);
    EXPECT_EQ(ss.sum, 0);
  }
}

TEST_F(ScanKernelTest, CountProfileNeverReadsMeasures) {
  // The contract that lets COUNT scans skip the measure column entirely
  // (null pointer would crash any backend that touched it).
  std::vector<std::vector<Value>> columns = {{1, 2, 3, 4, 5, 6, 7}};
  std::vector<ColumnPredicate> preds(1);
  preds[0].values = columns[0].data();
  preds[0].lo = 3;
  preds[0].hi = 6;
  for (ScanBackend backend : {ScanBackend::kScalar, ScanBackend::kAvx2}) {
    ScanResult r = ScanColumnsWithBackend(backend, preds.data(), 1,
                                          /*measures=*/nullptr, 7,
                                          ScanProfile::kCount);
    EXPECT_EQ(r.count, 4);
  }
}

TEST_F(ScanKernelTest, NoPredicatesMatchesEveryRow) {
  std::vector<int64_t> measures = {1, 2, 3, 4, 5};
  for (ScanBackend backend : {ScanBackend::kScalar, ScanBackend::kAvx2}) {
    ScanResult r = ScanColumnsWithBackend(backend, nullptr, 0,
                                          measures.data(), measures.size(),
                                          ScanProfile::kAll);
    EXPECT_EQ(r.count, 5);
    EXPECT_EQ(r.sum, 15);
    EXPECT_EQ(r.sum_squares, 55);
  }
}

TEST_F(ScanKernelTest, ForceScalarEnvControlsDispatch) {
  ::setenv("FEDAQP_FORCE_SCALAR", "1", 1);
  EXPECT_EQ(ResolveScanBackend(), ScanBackend::kScalar);
  ::setenv("FEDAQP_FORCE_SCALAR", "0", 1);
  EXPECT_EQ(ResolveScanBackend(),
            Avx2Available() ? ScanBackend::kAvx2 : ScanBackend::kScalar);
  ::unsetenv("FEDAQP_FORCE_SCALAR");
  EXPECT_EQ(ResolveScanBackend(),
            Avx2Available() ? ScanBackend::kAvx2 : ScanBackend::kScalar);
}

TEST_F(ScanKernelTest, SetScanBackendOverridesCachedDispatch) {
  SetScanBackend(ScanBackend::kScalar);
  EXPECT_EQ(ActiveScanBackend(), ScanBackend::kScalar);
  SetScanBackend(ScanBackend::kAvx2);
  EXPECT_EQ(ActiveScanBackend(), ScanBackend::kAvx2);
}

// ------------------------------------------------- end-to-end bit identity --

Table SkewedTable(size_t rows, uint64_t seed) {
  Schema s;
  EXPECT_TRUE(s.AddDimension("a", 200).ok());
  EXPECT_TRUE(s.AddDimension("b", 100).ok());
  Table t(s);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    Row row;
    row.values = {rng.UniformInt(0, 199), rng.UniformInt(0, 99)};
    row.measure = rng.UniformInt(1, 1000);
    EXPECT_TRUE(t.Append(row).ok());
  }
  return t;
}

TEST_F(ScanKernelTest, StoreAnswersBitIdenticalAcrossBackendsAndShards) {
  // The acceptance property: for every layout and shard count, switching
  // the kernel backend changes nothing about the answers.
  Table t = SkewedTable(3000, 21);
  for (ClusterLayout layout :
       {ClusterLayout::kSequential, ClusterLayout::kSortedByFirstDim,
        ClusterLayout::kShuffled}) {
    ClusterStoreOptions opts;
    opts.cluster_capacity = 128;
    opts.layout = layout;
    Result<ClusterStore> store = ClusterStore::Build(t, opts);
    ASSERT_TRUE(store.ok());
    Rng rng(33);
    ThreadPool pool(2);
    for (int trial = 0; trial < 8; ++trial) {
      const Value lo = rng.UniformInt(0, 150);
      const Value hi = lo + rng.UniformInt(0, 49);
      for (Aggregation agg :
           {Aggregation::kCount, Aggregation::kSum,
            Aggregation::kSumSquares}) {
        RangeQuery q = RangeQueryBuilder(agg).Where(0, lo, hi).Build();
        SetScanBackend(ScanBackend::kScalar);
        const int64_t scalar_answer = store->EvaluateExact(q);
        SetScanBackend(ScanBackend::kAvx2);
        for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
          ShardedScanExecutor exec(shards, shards > 1 ? &pool : nullptr);
          EXPECT_EQ(store->EvaluateExact(q, &exec), scalar_answer)
              << "layout=" << static_cast<int>(layout)
              << " shards=" << shards;
        }
      }
    }
  }
}

}  // namespace
}  // namespace fedaqp
