// Tests for pps probabilities (Eq. 1), Hansen-Hurwitz estimation (Eq. 3),
// the EM sampler (Algorithm 2) and the uniform/Bernoulli baselines.

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/math.h"
#include "common/rng.h"
#include "sampling/em_sampler.h"
#include "sampling/hansen_hurwitz.h"
#include "sampling/pps.h"
#include "sampling/uniform.h"
#include "storage/cluster_store.h"

namespace fedaqp {
namespace {

// ------------------------------------------------------------------- pps --

TEST(PpsTest, NormalizesProportions) {
  std::vector<double> p = PpsProbabilities({1.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(p[0], 0.125);
  EXPECT_DOUBLE_EQ(p[1], 0.375);
  EXPECT_DOUBLE_EQ(p[2], 0.5);
}

TEST(PpsTest, SumsToOne) {
  Rng rng(3);
  std::vector<double> props(50);
  for (double& x : props) x = rng.UniformDouble();
  std::vector<double> p = PpsProbabilities(props);
  double total = std::accumulate(p.begin(), p.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PpsTest, AllZeroFallsBackToUniform) {
  std::vector<double> p = PpsProbabilities({0.0, 0.0, 0.0, 0.0});
  for (double x : p) EXPECT_DOUBLE_EQ(x, 0.25);
}

TEST(PpsTest, NegativeTreatedAsZero) {
  std::vector<double> p = PpsProbabilities({-1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
  EXPECT_DOUBLE_EQ(p[2], 0.5);
}

TEST(PpsTest, EmptyInput) {
  EXPECT_TRUE(PpsProbabilities({}).empty());
}

// --------------------------------------------------------- Hansen-Hurwitz --

TEST(HansenHurwitzTest, ValidatesInputs) {
  EXPECT_FALSE(HansenHurwitz({}, {}).ok());
  EXPECT_FALSE(HansenHurwitz({1.0}, {0.5, 0.5}).ok());
  EXPECT_FALSE(HansenHurwitz({1.0}, {0.0}).ok());
  EXPECT_FALSE(HansenHurwitz({1.0}, {-0.5}).ok());
}

TEST(HansenHurwitzTest, SingleClusterExpansion) {
  Result<HansenHurwitzEstimate> e = HansenHurwitz({10.0}, {0.25});
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(e->estimate, 40.0);
  EXPECT_DOUBLE_EQ(e->variance, 0.0);
}

TEST(HansenHurwitzTest, AveragesScaledDraws) {
  Result<HansenHurwitzEstimate> e =
      HansenHurwitz({10.0, 20.0}, {0.5, 0.5});
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(e->estimate, (20.0 + 40.0) / 2.0);
  EXPECT_GT(e->variance, 0.0);
}

TEST(HansenHurwitzTest, UnbiasedUnderPpsSampling) {
  // Population of clusters with known totals; draw with replacement using
  // pps and verify the Monte-Carlo mean of the estimator matches the true
  // total (unbiasedness of Eq. 3).
  std::vector<double> totals{5.0, 25.0, 50.0, 120.0};
  double truth = std::accumulate(totals.begin(), totals.end(), 0.0);
  std::vector<double> p = PpsProbabilities(totals);  // proportional to size
  Rng rng(41);
  RunningStats estimates;
  for (int rep = 0; rep < 20000; ++rep) {
    std::vector<double> drawn, probs;
    for (int i = 0; i < 3; ++i) {
      size_t idx = rng.WeightedIndex(p);
      drawn.push_back(totals[idx]);
      probs.push_back(p[idx]);
    }
    Result<HansenHurwitzEstimate> e = HansenHurwitz(drawn, probs);
    ASSERT_TRUE(e.ok());
    estimates.Add(e->estimate);
  }
  EXPECT_NEAR(estimates.mean(), truth, truth * 0.01);
}

TEST(HansenHurwitzTest, PerfectPpsHasZeroVariance) {
  // When p_i is exactly proportional to y_i, every draw expands to the
  // same total and the estimator variance collapses to zero.
  std::vector<double> totals{10.0, 30.0, 60.0};
  std::vector<double> p = PpsProbabilities(totals);
  std::vector<double> drawn{totals[2], totals[0], totals[1]};
  std::vector<double> probs{p[2], p[0], p[1]};
  Result<HansenHurwitzEstimate> e = HansenHurwitz(drawn, probs);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e->estimate, 100.0, 1e-9);
  EXPECT_NEAR(e->variance, 0.0, 1e-9);
}

// ------------------------------------------------------------- EM sampler --

TEST(EmSamplerTest, ValidatesInputs) {
  Rng rng(5);
  EmSamplerOptions opts;
  EXPECT_FALSE(EmSampleClusters({}, 2, opts, &rng).ok());
  EXPECT_FALSE(EmSampleClusters({0.5}, 0, opts, &rng).ok());
  EmSamplerOptions bad = opts;
  bad.epsilon = 0.0;
  EXPECT_FALSE(EmSampleClusters({0.5}, 1, bad, &rng).ok());
}

TEST(EmSamplerTest, ReturnsRequestedSampleAndPps) {
  Rng rng(7);
  EmSamplerOptions opts;
  opts.epsilon = 0.5;
  opts.n_min = 2;
  std::vector<double> props{0.1, 0.2, 0.3, 0.4};
  Result<EmSample> s = EmSampleClusters(props, 6, opts, &rng);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->chosen.size(), 6u);
  for (size_t idx : s->chosen) EXPECT_LT(idx, props.size());
  EXPECT_EQ(s->pps, PpsProbabilities(props));
  EXPECT_DOUBLE_EQ(s->epsilon_spent, 0.5);
}

TEST(EmSamplerTest, WithoutReplacementDistinct) {
  Rng rng(11);
  EmSamplerOptions opts;
  opts.with_replacement = false;
  std::vector<double> props{0.3, 0.3, 0.2, 0.2};
  Result<EmSample> s = EmSampleClusters(props, 4, opts, &rng);
  ASSERT_TRUE(s.ok());
  std::vector<bool> seen(4, false);
  for (size_t idx : s->chosen) {
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
  EXPECT_FALSE(EmSampleClusters(props, 5, opts, &rng).ok());
}

TEST(EmSamplerTest, BiasTowardsHighProportionClusters) {
  // With a healthy per-selection budget the EM prefers the dense cluster.
  Rng rng(13);
  EmSamplerOptions opts;
  opts.epsilon = 50.0;   // generous so preference is visible
  opts.n_min = 2;        // Delta_p = 1/6
  std::vector<double> props{0.9, 0.05, 0.05};
  size_t dense_picks = 0, total = 0;
  for (int rep = 0; rep < 300; ++rep) {
    Result<EmSample> s = EmSampleClusters(props, 4, opts, &rng);
    ASSERT_TRUE(s.ok());
    for (size_t idx : s->chosen) {
      dense_picks += (idx == 0) ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(dense_picks) / total, 0.5);
}

TEST(EmSamplerTest, TinyBudgetDegradesTowardUniform) {
  // As eps_S -> 0 the EM weights flatten; pick frequencies approach 1/3.
  Rng rng(17);
  EmSamplerOptions opts;
  opts.epsilon = 1e-6;
  opts.n_min = 2;
  std::vector<double> props{0.9, 0.05, 0.05};
  size_t dense_picks = 0, total = 0;
  for (int rep = 0; rep < 2000; ++rep) {
    Result<EmSample> s = EmSampleClusters(props, 3, opts, &rng);
    ASSERT_TRUE(s.ok());
    for (size_t idx : s->chosen) {
      dense_picks += (idx == 0) ? 1 : 0;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(dense_picks) / total, 1.0 / 3.0, 0.05);
}

// ------------------------------------------------------ Uniform baselines --

TEST(UniformIndicesTest, Validation) {
  Rng rng(19);
  EXPECT_FALSE(UniformIndices(0, 1, true, &rng).ok());
  EXPECT_FALSE(UniformIndices(3, 4, false, &rng).ok());
  EXPECT_TRUE(UniformIndices(3, 4, true, &rng).ok());
}

TEST(UniformIndicesTest, WithoutReplacementDistinctAndInRange) {
  Rng rng(23);
  Result<std::vector<size_t>> r = UniformIndices(10, 10, false, &rng);
  ASSERT_TRUE(r.ok());
  std::vector<bool> seen(10, false);
  for (size_t idx : *r) {
    ASSERT_LT(idx, 10u);
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

ClusterStore MakeStore(size_t rows, uint64_t seed, size_t capacity) {
  Schema s;
  EXPECT_TRUE(s.AddDimension("x", 100).ok());
  Table t(s);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(t.AppendValues({rng.UniformInt(0, 99)}).ok());
  }
  ClusterStoreOptions opts;
  opts.cluster_capacity = capacity;
  Result<ClusterStore> store = ClusterStore::Build(t, opts);
  EXPECT_TRUE(store.ok());
  return std::move(store).value();
}

TEST(BernoulliRowTest, ScansEverythingAndIsRoughlyUnbiased) {
  ClusterStore store = MakeStore(4000, 29, 256);
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount).Where(0, 0, 49).Build();
  int64_t truth = store.EvaluateExact(q);
  Rng rng(31);
  RunningStats est;
  size_t scanned = 0;
  for (int rep = 0; rep < 200; ++rep) {
    Result<BernoulliEstimate> r = BernoulliRowEstimate(store, q, 0.2, &rng);
    ASSERT_TRUE(r.ok());
    est.Add(r->estimate);
    scanned = r->rows_scanned;
  }
  EXPECT_EQ(scanned, store.TotalRows());  // full scan regardless of rate
  EXPECT_NEAR(est.mean(), static_cast<double>(truth), truth * 0.05);
}

TEST(BernoulliRowTest, RateValidation) {
  ClusterStore store = MakeStore(100, 37, 32);
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount).Where(0, 0, 99).Build();
  Rng rng(41);
  EXPECT_FALSE(BernoulliRowEstimate(store, q, 0.0, &rng).ok());
  EXPECT_FALSE(BernoulliRowEstimate(store, q, 1.5, &rng).ok());
}

TEST(UniformClusterTest, RoughlyUnbiasedOnUniformData) {
  ClusterStore store = MakeStore(4000, 43, 128);
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount).Where(0, 20, 79).Build();
  int64_t truth = store.EvaluateExact(q);
  Rng rng(47);
  RunningStats est;
  for (int rep = 0; rep < 400; ++rep) {
    Result<UniformClusterEstimate> r =
        UniformClusterSample(store, q, 8, &rng);
    ASSERT_TRUE(r.ok());
    est.Add(r->estimate);
    EXPECT_EQ(r->clusters_scanned, 8u);
  }
  EXPECT_NEAR(est.mean(), static_cast<double>(truth), truth * 0.05);
}

}  // namespace
}  // namespace fedaqp
