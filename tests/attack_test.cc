// Tests for the NBC learning-based attack (Sec. 6.6): classifier mechanics
// on clean counts, and end-to-end failure against the DP federation.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "attack/attack_runner.h"
#include "attack/nbc.h"
#include "common/rng.h"
#include "dp/composition.h"
#include "workload/datagen.h"

namespace fedaqp {
namespace {

// ------------------------------------------------------------------- NBC --

TEST(NbcTest, NumTrainingQueriesFormula) {
  // nQueries = 1 + |SA| + |SA| * sum |QI|.
  NaiveBayesClassifier nbc(100, {16, 7, 15});
  EXPECT_EQ(nbc.NumTrainingQueries(), 1u + 100u + 100u * 38u);
}

TEST(NbcTest, TrainValidatesShapes) {
  NaiveBayesClassifier nbc(2, {2});
  EXPECT_FALSE(nbc.Train(10.0, {5.0}, {}).ok());  // sa_counts wrong size
  EXPECT_FALSE(
      nbc.Train(10.0, {5.0, 5.0}, {}).ok());      // joint missing
  EXPECT_FALSE(nbc.Predict({0}).ok());            // untrained
}

TEST(NbcTest, LearnsPlantedDependenceFromCleanCounts) {
  // Planted model: SA == QI with certainty. Clean counts must let the NBC
  // predict perfectly.
  const size_t k = 4;
  std::vector<double> sa_counts(k, 25.0);
  std::vector<std::vector<std::vector<double>>> joint(
      1, std::vector<std::vector<double>>(k, std::vector<double>(k, 0.0)));
  for (size_t y = 0; y < k; ++y) joint[0][y][y] = 25.0;
  NaiveBayesClassifier nbc(k, {k});
  ASSERT_TRUE(nbc.Train(100.0, sa_counts, joint).ok());
  for (size_t v = 0; v < k; ++v) {
    Result<size_t> pred = nbc.Predict({static_cast<Value>(v)});
    ASSERT_TRUE(pred.ok());
    EXPECT_EQ(*pred, v);
  }
}

TEST(NbcTest, PrefersPriorWhenLikelihoodsAreFlat) {
  const size_t k = 3;
  std::vector<double> sa_counts{70.0, 20.0, 10.0};
  // QI independent of SA: joint proportional to prior.
  std::vector<std::vector<std::vector<double>>> joint(
      1, std::vector<std::vector<double>>(k, std::vector<double>(2, 0.0)));
  for (size_t y = 0; y < k; ++y) {
    joint[0][y][0] = sa_counts[y] * 0.5;
    joint[0][y][1] = sa_counts[y] * 0.5;
  }
  NaiveBayesClassifier nbc(k, {2});
  ASSERT_TRUE(nbc.Train(100.0, sa_counts, joint).ok());
  EXPECT_EQ(*nbc.Predict({0}), 0u);  // the majority class
  EXPECT_EQ(*nbc.Predict({1}), 0u);
}

TEST(NbcTest, SurvivesNegativeNoisyCounts) {
  // DP answers can be negative; training must not produce NaNs.
  NaiveBayesClassifier nbc(2, {2});
  std::vector<std::vector<std::vector<double>>> joint(
      1, std::vector<std::vector<double>>(2, std::vector<double>(2, -3.0)));
  ASSERT_TRUE(nbc.Train(-5.0, {-1.0, 2.0}, joint).ok());
  Result<size_t> pred = nbc.Predict({1});
  ASSERT_TRUE(pred.ok());
  EXPECT_LT(*pred, 2u);
}

TEST(NbcTest, PredictValidatesQiValues) {
  NaiveBayesClassifier nbc(2, {2});
  std::vector<std::vector<std::vector<double>>> joint(
      1, std::vector<std::vector<double>>(2, std::vector<double>(2, 1.0)));
  ASSERT_TRUE(nbc.Train(4.0, {2.0, 2.0}, joint).ok());
  EXPECT_FALSE(nbc.Predict({5}).ok());
  EXPECT_FALSE(nbc.Predict({0, 0}).ok());
}

// ---------------------------------------------------------- Attack runner --

class AttackFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // Small but strongly dependent data: SA (dim 0) determines QI (dim 1)
    // exactly, so a noiseless attacker would reach high accuracy and any
    // failure is attributable to the DP interface.
    SyntheticConfig cfg;
    cfg.rows = 4000;
    cfg.seed = 83;
    cfg.correlate_first_two = true;
    cfg.dims = {{"sa", 10, DistributionKind::kUniform, 0.0},
                {"qi", 10, DistributionKind::kUniform, 0.0},
                {"pad", 8, DistributionKind::kUniform, 0.0}};
    Result<Table> raw = GenerateSynthetic(cfg);
    ASSERT_TRUE(raw.ok());
    raw_ = std::move(raw).value();
    Result<Table> tensor = raw_.BuildCountTensor({0, 1, 2});
    ASSERT_TRUE(tensor.ok());
    Result<std::vector<Table>> parts = tensor->PartitionHorizontally(3);
    ASSERT_TRUE(parts.ok());
    for (size_t i = 0; i < parts->size(); ++i) {
      DataProvider::Options popts;
      popts.storage.cluster_capacity = 64;
      popts.n_min = 3;
      popts.seed = 900 + i;
      Result<std::unique_ptr<DataProvider>> p =
          DataProvider::Create((*parts)[i], popts);
      ASSERT_TRUE(p.ok());
      providers_.push_back(std::move(p).value());
    }
  }

  std::vector<DataProvider*> Ptrs() {
    std::vector<DataProvider*> out;
    for (auto& p : providers_) out.push_back(p.get());
    return out;
  }

  Table raw_;
  std::vector<std::unique_ptr<DataProvider>> providers_;
};

TEST_F(AttackFixture, BuildEvalRowsExtractsColumns) {
  std::vector<EvalRow> rows = BuildEvalRows(raw_, 0, {1}, 100);
  ASSERT_EQ(rows.size(), 100u);
  EXPECT_EQ(rows[0].sa_value, raw_.row(0).values[0]);
  EXPECT_EQ(rows[0].qi_values[0], raw_.row(0).values[1]);
}

TEST_F(AttackFixture, RunValidatesConfig) {
  FederationConfig base;
  AttackConfig bad;
  bad.sa_dim = 99;
  EXPECT_FALSE(RunNbcAttack(Ptrs(), base, bad, {}).ok());
  AttackConfig dup;
  dup.sa_dim = 0;
  dup.qi_dims = {0};
  EXPECT_FALSE(RunNbcAttack(Ptrs(), base, dup, {}).ok());
}

TEST_F(AttackFixture, DpInterfaceDefeatsAttackUnderTightBudget) {
  FederationConfig base;
  base.sampling_rate = 0.3;
  AttackConfig attack;
  attack.sa_dim = 0;
  attack.qi_dims = {1};
  attack.xi = 1.0;  // the paper's tightest grant
  attack.psi = 1e-6;
  attack.composition = AttackComposition::kSequential;
  std::vector<EvalRow> eval = BuildEvalRows(raw_, 0, {1}, 1500);
  Result<AttackResult> result = RunNbcAttack(Ptrs(), base, attack, eval);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_training_queries, 1u + 10u + 10u * 10u);
  // Perfect dependence would give ~100%; the DP interface must crush it
  // to near the 10% random-guess floor.
  EXPECT_LT(result->accuracy, 0.30);
}

TEST_F(AttackFixture, CoalitionGetsFullBudgetPerQuery) {
  FederationConfig base;
  AttackConfig attack;
  attack.sa_dim = 0;
  attack.qi_dims = {1};
  attack.xi = 20.0;
  attack.psi = 1e-6;
  attack.composition = AttackComposition::kCoalition;
  std::vector<EvalRow> eval = BuildEvalRows(raw_, 0, {1}, 200);
  Result<AttackResult> result = RunNbcAttack(Ptrs(), base, attack, eval);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->per_query_budget.epsilon, 20.0);
}

TEST_F(AttackFixture, PerQueryBudgetsMatchCompositionFormulas) {
  // The runner must derive exactly the Sec. 6.6 budgets. (Whether the
  // advanced budget beats the sequential one depends on nQueries — it
  // wins only for large query counts, see CompositionTest — so the
  // runner is checked against the formulas rather than an ordering.)
  FederationConfig base;
  AttackConfig seq;
  seq.sa_dim = 0;
  seq.qi_dims = {1};
  seq.xi = 50.0;
  seq.psi = 1e-6;
  seq.composition = AttackComposition::kSequential;
  AttackConfig adv = seq;
  adv.composition = AttackComposition::kAdvanced;
  std::vector<EvalRow> eval = BuildEvalRows(raw_, 0, {1}, 50);
  Result<AttackResult> rs = RunNbcAttack(Ptrs(), base, seq, eval);
  Result<AttackResult> ra = RunNbcAttack(Ptrs(), base, adv, eval);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(ra.ok());
  const size_t n = rs->num_training_queries;
  EXPECT_EQ(n, ra->num_training_queries);
  Result<PrivacyBudget> expected_seq = PerQuerySequential(50.0, 1e-6, n);
  Result<PrivacyBudget> expected_adv = PerQueryAdvanced(50.0, 1e-6, n);
  ASSERT_TRUE(expected_seq.ok());
  ASSERT_TRUE(expected_adv.ok());
  EXPECT_DOUBLE_EQ(rs->per_query_budget.epsilon, expected_seq->epsilon);
  EXPECT_DOUBLE_EQ(ra->per_query_budget.epsilon, expected_adv->epsilon);
  EXPECT_DOUBLE_EQ(ra->per_query_budget.delta, expected_adv->delta);
}

}  // namespace
}  // namespace fedaqp
