// Tests for the observability layer (src/obs/): the striped metric
// registry under concurrent hammering, span lifecycle / ring bounding /
// Chrome export in the trace recorder, bit-exact audit-log replay of the
// analyst ledger (including clamped refunds), and the determinism pin
// that a loopback batch with tracing on is bit-identical — answers,
// ledgers, and admission sequence — to the same batch with tracing off.
// The whole file runs in the CI ThreadSanitizer job: the counter hammer
// and the snapshot-while-incrementing reader are the TSan surface for
// the registry's striped relaxed atomics.

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dp/accountant.h"
#include "exec/federation_client.h"
#include "obs/audit_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/remote_endpoint.h"
#include "rpc/server.h"
#include "workload/datagen.h"

namespace fedaqp {
namespace {

// ------------------------------------------------------------- metrics --

TEST(MetricsTest, ConcurrentCounterHammerIsExact) {
  obs::Counter* counter =
      obs::MetricRegistry::Global().GetCounter("test.hammer");
  counter->Reset();
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 100000;

  std::atomic<bool> reading{true};
  // A reader folding the stripes while writers increment: telemetry may
  // lag but must never fault or tear (the TSan surface).
  std::thread reader([&] {
    while (reading.load(std::memory_order_relaxed)) {
      (void)counter->Value();
      (void)obs::MetricRegistry::Global().Snapshot("test.");
    }
  });
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Add();
    });
  }
  for (auto& t : writers) t.join();
  reading.store(false, std::memory_order_relaxed);
  reader.join();

  // Quiescent fold is exact — striping never loses an increment.
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
}

TEST(MetricsTest, RegistryHandlesAreStableAndNamed) {
  auto& reg = obs::MetricRegistry::Global();
  obs::Counter* a = reg.GetCounter("test.stable");
  obs::Counter* b = reg.GetCounter("test.stable");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetCounter("test.stable2"));
}

TEST(MetricsTest, GaugeSetAndSetMax) {
  obs::Gauge* gauge = obs::MetricRegistry::Global().GetGauge("test.gauge");
  gauge->Reset();
  EXPECT_EQ(gauge->Value(), 0.0);
  gauge->Set(3.5);
  EXPECT_EQ(gauge->Value(), 3.5);
  gauge->SetMax(2.0);  // Lower: no effect.
  EXPECT_EQ(gauge->Value(), 3.5);
  gauge->SetMax(7.25);  // Higher: raises the high-water mark.
  EXPECT_EQ(gauge->Value(), 7.25);
}

TEST(MetricsTest, HistogramQuantilesWithinOneOctave) {
  obs::Histogram* hist =
      obs::MetricRegistry::Global().GetHistogram("test.hist_seconds");
  hist->Reset();
  for (int i = 0; i < 100; ++i) hist->Record(1e-3);
  obs::Histogram::Snapshot snap = hist->Snap();
  EXPECT_EQ(snap.total, 100u);
  // All mass in the 1ms bucket: every quantile lands within its octave.
  for (double q : {0.5, 0.95, 0.99, 0.999}) {
    const double v = snap.Quantile(q);
    EXPECT_GE(v, 0.5e-3) << "q=" << q;
    EXPECT_LE(v, 1.1e-3) << "q=" << q;
  }
}

TEST(MetricsTest, SnapshotPrefixFilters) {
  auto& reg = obs::MetricRegistry::Global();
  reg.GetCounter("testprefix.a")->Reset();
  reg.GetCounter("testprefix.a")->Add(4);
  reg.GetCounter("testother.b")->Add(1);
  std::vector<obs::MetricSample> samples = reg.Snapshot("testprefix.");
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "testprefix.a");
  EXPECT_EQ(samples[0].kind, obs::MetricSample::Kind::kCounter);
  EXPECT_EQ(samples[0].value, 4.0);
}

TEST(MetricsTest, DisabledRegistryDropsIncrements) {
  auto& reg = obs::MetricRegistry::Global();
  obs::Counter* counter = reg.GetCounter("test.disabled");
  obs::Gauge* gauge = reg.GetGauge("test.disabled_gauge");
  obs::Histogram* hist = reg.GetHistogram("test.disabled_hist");
  counter->Reset();
  gauge->Reset();
  hist->Reset();

  obs::SetMetricsEnabled(false);
  counter->Add(5);
  gauge->Set(9.0);
  hist->Record(1.0);
  obs::SetMetricsEnabled(true);

  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(gauge->Value(), 0.0);
  EXPECT_EQ(hist->Snap().total, 0u);

  counter->Add(2);  // Re-enabled: increments land again.
  EXPECT_EQ(counter->Value(), 2u);
}

// --------------------------------------------------------------- traces --

/// RAII reset of the global recorder so trace tests cannot leak enabled
/// state (or stale spans) into each other.
struct TraceGuard {
  TraceGuard() {
    obs::TraceRecorder::Global().SetEnabled(false);
    obs::TraceRecorder::Global().Clear();
  }
  ~TraceGuard() {
    obs::TraceRecorder::Global().SetEnabled(false);
    obs::TraceRecorder::Global().SetCapacity(1 << 16);  // default; clears
  }
};

TEST(TraceTest, SpanLifecycleAndNesting) {
  TraceGuard guard;
  obs::TraceRecorder::Global().SetEnabled(true);
  {
    obs::ScopedSpan outer("test", std::string("outer"), 42);
    EXPECT_TRUE(outer.active());
    {
      obs::ScopedSpan inner("test", [] { return std::string("inner"); });
      EXPECT_TRUE(inner.active());
    }
  }
  obs::TraceRecorder::Global().SetEnabled(false);

  std::vector<obs::TraceSpan> spans = obs::TraceRecorder::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Recorded at END: the inner span lands first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_EQ(spans[1].session, 42u);
  EXPECT_EQ(spans[0].tid, spans[1].tid);
  EXPECT_GE(spans[0].start_us, spans[1].start_us);
  EXPECT_GE(spans[0].dur_us, 0.0);
  // Proper nesting: the outer span covers the inner one.
  EXPECT_LE(spans[0].start_us + spans[0].dur_us,
            spans[1].start_us + spans[1].dur_us + 1e-6);
}

TEST(TraceTest, DisabledSpansAreNoOps) {
  TraceGuard guard;
  bool name_built = false;
  {
    obs::ScopedSpan span("test", [&] {
      name_built = true;
      return std::string("never");
    });
    EXPECT_FALSE(span.active());
  }
  // The lazy name is never materialized on the disabled path.
  EXPECT_FALSE(name_built);
  EXPECT_EQ(obs::TraceRecorder::Global().size(), 0u);
}

TEST(TraceTest, RingDropsOldestAndStaysBounded) {
  TraceGuard guard;
  auto& recorder = obs::TraceRecorder::Global();
  recorder.SetCapacity(32);
  recorder.SetEnabled(true);
  for (int i = 0; i < 100; ++i) {
    obs::ScopedSpan span("test", "span" + std::to_string(i));
  }
  recorder.SetEnabled(false);
  EXPECT_EQ(recorder.size(), 32u);
  EXPECT_EQ(recorder.dropped(), 68u);
  // Drop-oldest: the newest spans survive.
  std::vector<obs::TraceSpan> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 32u);
  EXPECT_EQ(spans.back().name, "span99");
  EXPECT_EQ(spans.front().name, "span68");
}

TEST(TraceTest, ChromeExportIsBalancedJson) {
  TraceGuard guard;
  obs::TraceRecorder::Global().SetEnabled(true);
  {
    obs::ScopedSpan outer("test", std::string("q1/estimate/p0"), 7);
    obs::ScopedSpan inner("test", std::string("child"));
  }
  obs::TraceRecorder::Global().SetEnabled(false);

  const std::string path =
      ::testing::TempDir() + "/fedaqp_obs_trace_test.json";
  Status exported = obs::TraceRecorder::Global().ExportChromeTrace(path);
  ASSERT_TRUE(exported.ok()) << exported.ToString();

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());

  EXPECT_NE(contents.find("\"traceEvents\""), std::string::npos);
  size_t begins = 0, ends = 0;
  for (size_t pos = 0; (pos = contents.find("\"ph\":\"B\"", pos)) !=
                       std::string::npos;
       ++pos) {
    ++begins;
  }
  for (size_t pos = 0; (pos = contents.find("\"ph\":\"E\"", pos)) !=
                       std::string::npos;
       ++pos) {
    ++ends;
  }
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(begins, ends);
  EXPECT_NE(contents.find("\"session\":7"), std::string::npos);
}

// ------------------------------------------------------------ audit log --

void ExpectLedgersBitIdentical(const AnalystLedger& a, const AnalystLedger& b,
                               const std::string& analyst) {
  Result<PrivacyBudget> spent_a = a.Spent(analyst);
  Result<PrivacyBudget> spent_b = b.Spent(analyst);
  ASSERT_TRUE(spent_a.ok() && spent_b.ok()) << analyst;
  EXPECT_EQ(spent_a->epsilon, spent_b->epsilon) << analyst;
  EXPECT_EQ(spent_a->delta, spent_b->delta) << analyst;
  Result<PrivacyBudget> rem_a = a.Remaining(analyst);
  Result<PrivacyBudget> rem_b = b.Remaining(analyst);
  ASSERT_TRUE(rem_a.ok() && rem_b.ok()) << analyst;
  EXPECT_EQ(rem_a->epsilon, rem_b->epsilon) << analyst;
  EXPECT_EQ(rem_a->delta, rem_b->delta) << analyst;
  Result<PrivacyBudget> saved_a = a.Saved(analyst);
  Result<PrivacyBudget> saved_b = b.Saved(analyst);
  ASSERT_TRUE(saved_a.ok() && saved_b.ok()) << analyst;
  EXPECT_EQ(saved_a->epsilon, saved_b->epsilon) << analyst;
  EXPECT_EQ(saved_a->delta, saved_b->delta) << analyst;
}

TEST(AuditLogTest, ReplayReproducesDirectLedgerMutations) {
  obs::BudgetAuditLog log;
  AnalystLedger live;
  live.AttachAuditLog(&log);

  ASSERT_TRUE(live.Register("alice", 10.0, 1e-2).ok());
  ASSERT_TRUE(live.Register("bob", 5.0, 1e-3).ok());
  ASSERT_TRUE(live.Charge("alice", {1.0, 1e-4}, 1).ok());
  ASSERT_TRUE(live.Charge("alice", {0.3, 2e-5}, 2).ok());
  ASSERT_TRUE(live.Charge("bob", {0.7, 1e-5}, 3).ok());
  ASSERT_TRUE(live.Refund("alice", {0.25, 1e-5}, 1).ok());
  live.RecordSaving("bob", {0.7, 1e-5}, 4);
  // A clamped overdraw refund: InvalidArgument, but the live ledger WAS
  // mutated (spend floored at zero) — replay must reproduce that too.
  Status clamped = live.Refund("bob", {100.0, 1.0e-1}, 3);
  EXPECT_FALSE(clamped.ok());
  EXPECT_EQ(clamped.code(), StatusCode::kInvalidArgument);
  // Refused charges must NOT be logged: this one overdraws bob.
  EXPECT_FALSE(live.Charge("bob", {1e9, 0.0}, 5).ok());
  // Unknown-analyst mutations leave no record either.
  EXPECT_FALSE(live.Charge("mallory", {0.1, 0.0}, 6).ok());
  live.RecordSaving("mallory", {0.1, 0.0}, 6);

  EXPECT_EQ(log.size(), 8u);  // 2 registers, 3 charges, 2 refunds, 1 saving.
  std::vector<obs::BudgetAuditLog::Record> alice = log.ForAnalyst("alice");
  ASSERT_EQ(alice.size(), 4u);
  EXPECT_EQ(alice[0].kind, obs::BudgetAuditLog::Kind::kRegister);
  EXPECT_EQ(alice[3].kind, obs::BudgetAuditLog::Kind::kRefund);
  EXPECT_EQ(alice[3].seq, 1u);

  AnalystLedger replayed;
  Status replay = log.Replay(&replayed);
  ASSERT_TRUE(replay.ok()) << replay.ToString();
  for (const std::string analyst : {"alice", "bob"}) {
    ExpectLedgersBitIdentical(live, replayed, analyst);
  }
  EXPECT_FALSE(replayed.Knows("mallory"));
}

std::unique_ptr<DataProvider> MakeProvider(size_t rows, uint64_t seed) {
  SyntheticConfig cfg;
  cfg.rows = rows;
  cfg.seed = seed;
  cfg.dims = {{"a", 200, DistributionKind::kNormal, 0.5},
              {"b", 100, DistributionKind::kZipf, 1.2}};
  Result<Table> t = GenerateSynthetic(cfg);
  EXPECT_TRUE(t.ok());
  Result<Table> tensor = t->BuildCountTensor({0, 1});
  EXPECT_TRUE(tensor.ok());
  DataProvider::Options popts;
  popts.storage.cluster_capacity = 128;
  popts.storage.layout = ClusterLayout::kShuffled;
  popts.storage.shuffle_seed = seed;
  popts.n_min = 4;
  popts.seed = seed * 3 + 1;
  Result<std::unique_ptr<DataProvider>> p =
      DataProvider::Create(*tensor, popts);
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

std::vector<DataProvider*> Ptrs(
    std::vector<std::unique_ptr<DataProvider>>& providers) {
  std::vector<DataProvider*> out;
  for (auto& p : providers) out.push_back(p.get());
  return out;
}

FederationConfig BaseConfig() {
  FederationConfig config;
  config.per_query_budget = {1.0, 1e-3};
  config.sampling_rate = 0.3;
  config.total_xi = 1e6;
  config.total_psi = 1e3;
  config.seed = 77;
  config.num_threads = 2;
  config.scheduler = BatchScheduler::kTaskGraph;
  return config;
}

RangeQuery Query(int shift) {
  return RangeQueryBuilder(Aggregation::kCount)
      .Where(0, 20 + shift, 180)
      .Build();
}

// The acceptance pin: every charge/refund/saving a real client session
// makes — fresh charges, cache-served savings — replays into a fresh
// ledger bit-exactly.
TEST(AuditLogTest, ReplayReproducesClientSessionLedger) {
  std::vector<std::unique_ptr<DataProvider>> providers;
  providers.push_back(MakeProvider(4000, 901));
  providers.push_back(MakeProvider(4000, 914));

  FederationClient::Options copts;
  copts.protocol = BaseConfig();
  copts.analysts = {{"alice", 1e6, 1e3}, {"bob", 1e6, 1e3}};
  copts.enable_cache = true;  // Repeats produce kSaving records.
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(Ptrs(providers), copts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 3; ++i) {
    QuerySpec spec;
    spec.analyst = i % 2 == 0 ? "alice" : "bob";
    spec.query = Query(i);
    tickets.push_back((*client)->Submit(std::move(spec)));
  }
  // Exact repeat of the first query: the cache serves it for zero fresh
  // budget and the ledger records a saving instead of a charge.
  {
    QuerySpec spec;
    spec.analyst = "alice";
    spec.query = Query(0);
    tickets.push_back((*client)->Submit(std::move(spec)));
  }
  for (auto& t : tickets) {
    Result<QueryResponse> resp = t.Wait();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  }

  const obs::BudgetAuditLog& log = (*client)->audit_log();
  EXPECT_GE(log.size(), 6u);  // 2 registers + 3 charges + 1 saving.
  size_t savings = 0;
  for (const auto& r : log.Snapshot()) {
    if (r.kind == obs::BudgetAuditLog::Kind::kSaving) ++savings;
    if (r.kind == obs::BudgetAuditLog::Kind::kCharge ||
        r.kind == obs::BudgetAuditLog::Kind::kSaving) {
      EXPECT_GT(r.seq, 0u) << "charge/saving without an admission seq";
    }
  }
  EXPECT_EQ(savings, 1u);

  AnalystLedger replayed;
  Status replay = log.Replay(&replayed);
  ASSERT_TRUE(replay.ok()) << replay.ToString();
  for (const std::string analyst : {"alice", "bob"}) {
    ExpectLedgersBitIdentical((*client)->ledger(), replayed, analyst);
  }
}

// --------------------------------------- tracing on/off determinism pin --

struct LoopbackRun {
  std::vector<double> estimates;
  std::vector<uint64_t> seqs;
  double spent_eps = 0.0;
  double spent_delta = 0.0;
};

/// One full loopback session — fresh providers, servers, and client with
/// identical seeds — returning everything the determinism contract
/// covers: answers, admission sequence, and the analyst's exact spend.
LoopbackRun RunLoopbackWorkload(bool traced) {
  LoopbackRun run;
  std::vector<std::unique_ptr<DataProvider>> providers;
  providers.push_back(MakeProvider(4000, 901));
  providers.push_back(MakeProvider(4000, 914));

  std::vector<std::unique_ptr<RpcProviderServer>> servers;
  std::vector<std::string> host_ports;
  for (auto& p : providers) {
    Result<std::unique_ptr<RpcProviderServer>> server =
        RpcProviderServer::Start(p.get());
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    servers.push_back(std::move(server).value());
    host_ports.push_back("127.0.0.1:" +
                         std::to_string(servers.back()->port()));
  }
  Result<std::vector<std::shared_ptr<ProviderEndpoint>>> remote =
      RemoteEndpoint::ConnectAll(host_ports);
  EXPECT_TRUE(remote.ok()) << remote.status().ToString();

  FederationClient::Options copts;
  copts.protocol = BaseConfig();
  copts.analysts = {{"alice", 1e6, 1e3}};
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(std::move(remote).value(), copts);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  if (!client.ok()) return run;

  obs::TraceRecorder::Global().SetEnabled(traced);
  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 4; ++i) {
    QuerySpec spec;
    spec.analyst = "alice";
    spec.query = Query(i);
    tickets.push_back((*client)->Submit(std::move(spec)));
  }
  for (auto& t : tickets) {
    Result<QueryResponse> resp = t.Wait();
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
    run.estimates.push_back(resp.ok() ? resp->estimate : 0.0);
    run.seqs.push_back(t.id());
  }
  obs::TraceRecorder::Global().SetEnabled(false);

  Result<PrivacyBudget> spent = (*client)->ledger().Spent("alice");
  EXPECT_TRUE(spent.ok());
  if (spent.ok()) {
    run.spent_eps = spent->epsilon;
    run.spent_delta = spent->delta;
  }
  return run;
}

// Tracing must observe, never perturb: a traced loopback batch is
// bit-identical to the untraced one — same estimates, same admission
// sequence, same ledger state — while actually recording spans from the
// task, client, rpc, and server layers.
TEST(TraceDeterminismTest, LoopbackBatchBitIdenticalWithTracingOn) {
  TraceGuard guard;
  LoopbackRun off = RunLoopbackWorkload(false);
  EXPECT_EQ(obs::TraceRecorder::Global().size(), 0u);

  obs::TraceRecorder::Global().Clear();
  LoopbackRun on = RunLoopbackWorkload(true);
  EXPECT_GT(obs::TraceRecorder::Global().size(), 0u);

  ASSERT_EQ(off.estimates.size(), on.estimates.size());
  for (size_t i = 0; i < off.estimates.size(); ++i) {
    EXPECT_EQ(off.estimates[i], on.estimates[i]) << "query " << i;
  }
  EXPECT_EQ(off.seqs, on.seqs);
  EXPECT_EQ(off.spent_eps, on.spent_eps);
  EXPECT_EQ(off.spent_delta, on.spent_delta);

  // The traced run exercised every instrumented layer.
  bool saw_task = false, saw_rpc = false, saw_server = false,
       saw_client = false;
  for (const obs::TraceSpan& span :
       obs::TraceRecorder::Global().Snapshot()) {
    if (span.cat == "task") saw_task = true;
    if (span.cat == "rpc") saw_rpc = true;
    if (span.cat == "server") saw_server = true;
    if (span.cat == "client") saw_client = true;
  }
  EXPECT_TRUE(saw_task);
  EXPECT_TRUE(saw_rpc);
  EXPECT_TRUE(saw_server);
  EXPECT_TRUE(saw_client);
}

}  // namespace
}  // namespace fedaqp
