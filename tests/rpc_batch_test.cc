// Doorbell batching and event-loop server tests: coalesced calls must be
// invisible except in the byte odometers — answers bit-identical to the
// unbatched protocol, real wire bytes equal to SimNetwork's charges plus
// exactly the counted outer-header overhead — and one epoll server must
// multiplex many concurrent connections, slow readers included, on a
// handful of workers.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "federation/provider.h"
#include "rpc/remote_endpoint.h"
#include "rpc/server.h"
#include "rpc/transport.h"
#include "rpc/wire.h"
#include "storage/range_query.h"
#include "workload/datagen.h"

namespace fedaqp {
namespace {

std::unique_ptr<DataProvider> MakeProvider(size_t rows, uint64_t seed) {
  SyntheticConfig cfg;
  cfg.rows = rows;
  cfg.seed = seed;
  cfg.dims = {{"a", 200, DistributionKind::kNormal, 0.5},
              {"b", 100, DistributionKind::kZipf, 1.2}};
  Result<Table> t = GenerateSynthetic(cfg);
  EXPECT_TRUE(t.ok());
  Result<Table> tensor = t->BuildCountTensor({0, 1});
  EXPECT_TRUE(tensor.ok());
  DataProvider::Options popts;
  popts.storage.cluster_capacity = 128;
  popts.storage.layout = ClusterLayout::kShuffled;
  popts.storage.shuffle_seed = seed;
  popts.n_min = 4;
  popts.seed = seed * 3 + 1;
  Result<std::unique_ptr<DataProvider>> p =
      DataProvider::Create(*tensor, popts);
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

RangeQuery ScanQuery(uint32_t lo, uint32_t hi) {
  return RangeQueryBuilder(Aggregation::kCount).Where(0, lo, hi).Build();
}

/// One provider behind one server; tests connect as many clients as they
/// need. Few workers on purpose: multiplexing, not worker-per-connection,
/// must carry the load.
class RpcBatchTest : public ::testing::Test {
 protected:
  void SetUp() override { StartServer({}); }

  void StartServer(RpcServerOptions options) {
    servers_.clear();
    provider_ = MakeProvider(20000, 3);
    options.num_workers = 2;
    Result<std::unique_ptr<RpcProviderServer>> server =
        RpcProviderServer::Start(provider_.get(), options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    servers_.push_back(std::move(server).value());
  }

  uint16_t port() const { return servers_[0]->port(); }

  Result<std::shared_ptr<RemoteEndpoint>> Connect() {
    return RemoteEndpoint::Connect("127.0.0.1", port());
  }

  std::unique_ptr<DataProvider> provider_;
  std::vector<std::unique_ptr<RpcProviderServer>> servers_;
};

// Concurrent calls through one endpoint must coalesce into kBatch
// exchanges, and every coalesced answer must be bit-identical to the
// same call made sequentially (ExactFullScan is a pure function of the
// store, so the comparison is exact).
TEST_F(RpcBatchTest, CoalescedCallsMatchSequentialAnswers) {
  Result<std::shared_ptr<RemoteEndpoint>> endpoint = Connect();
  ASSERT_TRUE(endpoint.ok()) << endpoint.status().ToString();

  // Sequential reference, unbatched by construction (one caller).
  std::vector<RangeQuery> queries;
  std::vector<double> reference;
  for (uint32_t i = 0; i < 24; ++i) {
    queries.push_back(ScanQuery(i, 100 + i));
    Result<ExactScanReply> reply =
        (*endpoint)->ExactFullScan(ExactScanRequest{queries.back()});
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    reference.push_back(reply->value);
  }
  EXPECT_EQ((*endpoint)->doorbell_batches(), 0u)
      << "a sequential caller must never pay for batching";

  // The same scans from 8 threads: calls park, coalesce, and must come
  // back identical. Repeat a few rounds to make coalescing overwhelmingly
  // likely on any scheduler.
  std::vector<double> answers(queries.size());
  std::atomic<int> failures{0};
  for (int round = 0; round < 4; ++round) {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        for (size_t i = t; i < queries.size(); i += 8) {
          Result<ExactScanReply> reply =
              (*endpoint)->ExactFullScan(ExactScanRequest{queries[i]});
          if (!reply.ok()) {
            failures.fetch_add(1);
            return;
          }
          answers[i] = reply->value;
        }
      });
    }
    for (std::thread& t : threads) t.join();
    ASSERT_EQ(failures.load(), 0);
    EXPECT_EQ(answers, reference);
  }
  EXPECT_GT((*endpoint)->doorbell_batches(), 0u)
      << "8 threads x 4 rounds should have coalesced at least once";
  EXPECT_GE((*endpoint)->max_coalesced_batch(), 2u);
  EXPECT_GE((*endpoint)->coalesced_calls(),
            2 * (*endpoint)->doorbell_batches());
}

// The byte-accounting invariant under coalescing: real bytes moved ==
// per-message protocol charges (what SimNetwork bills, unchanged by
// batching) + exactly one outer frame header per batched send and per
// batched reply (what batch_overhead_bytes counts).
TEST_F(RpcBatchTest, CoalescedBytesEqualChargesPlusCountedOverhead) {
  Result<std::shared_ptr<RemoteEndpoint>> endpoint = Connect();
  ASSERT_TRUE(endpoint.ok());

  const uint64_t base =
      (*endpoint)->bytes_sent() + (*endpoint)->bytes_received();
  std::vector<RangeQuery> queries;
  for (uint32_t i = 0; i < 16; ++i) queries.push_back(ScanQuery(i, 120));

  // What the per-message protocol charges: request + reply wire size of
  // every call, batched or not.
  std::atomic<uint64_t> charged{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = t; i < queries.size(); i += 8) {
        ExactScanRequest request{queries[i]};
        Result<ExactScanReply> reply = (*endpoint)->ExactFullScan(request);
        if (!reply.ok()) {
          failures.fetch_add(1);
          return;
        }
        charged.fetch_add(WireSize(request) + WireSize(*reply));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  const uint64_t moved =
      (*endpoint)->bytes_sent() + (*endpoint)->bytes_received() - base;
  EXPECT_EQ(moved, charged.load() + (*endpoint)->batch_overhead_bytes());
  EXPECT_EQ((*endpoint)->batch_overhead_bytes(),
            2 * kFrameHeaderBytes * (*endpoint)->doorbell_batches());
}

// A raw-wire kBatch exchange: sub-replies arrive in request order inside
// one kBatch reply, mixing methods (kInfo + scans + kEndQuery ack).
TEST_F(RpcBatchTest, WireBatchRepliesArriveInRequestOrder) {
  Result<TcpConnection> conn = TcpConnection::Connect("127.0.0.1", port());
  ASSERT_TRUE(conn.ok());

  ByteWriter batch;
  {
    EncodeFrameHeader(RpcMethod::kInfo, 0, &batch);  // Empty payload.
    ByteWriter scan;
    EncodeExactScanRequest(ExactScanRequest{ScanQuery(10, 150)}, &scan);
    EncodeFrameHeader(RpcMethod::kExactFullScan,
                      static_cast<uint32_t>(scan.size()), &batch);
    batch.PutRaw(scan.bytes().data(), scan.size());
    ByteWriter end;
    EncodeEndQueryRequest(EndQueryRequest{42}, &end);
    EncodeFrameHeader(RpcMethod::kEndQuery, static_cast<uint32_t>(end.size()),
                      &batch);
    batch.PutRaw(end.bytes().data(), end.size());
  }
  ASSERT_TRUE(conn->SendFrame(RpcMethod::kBatch, batch).ok());
  Result<RpcFrame> reply = conn->ReceiveFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->method, RpcMethod::kBatch);
  Result<std::vector<RpcFrame>> subs =
      DecodeBatchPayload(reply->payload, /*requests_only=*/false);
  ASSERT_TRUE(subs.ok()) << subs.status().ToString();
  ASSERT_EQ(subs->size(), 3u);
  EXPECT_EQ((*subs)[0].method, RpcMethod::kInfo);
  EXPECT_EQ((*subs)[1].method, RpcMethod::kExactFullScan);
  EXPECT_EQ((*subs)[2].method, RpcMethod::kEndQuery);
  ByteReader info_reader((*subs)[0].payload);
  Result<EndpointInfo> info = DecodeEndpointInfo(&info_reader);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->name, provider_->name());
}

// Malformed batches must be rejected without desynchronizing the stream:
// the connection keeps serving after each kError reply.
TEST_F(RpcBatchTest, MalformedBatchesAreRejectedAndRecoverable) {
  Result<TcpConnection> conn = TcpConnection::Connect("127.0.0.1", port());
  ASSERT_TRUE(conn.ok());

  // Empty batch.
  ASSERT_TRUE(conn->SendFrame(RpcMethod::kBatch, ByteWriter()).ok());
  Result<RpcFrame> reply = conn->ReceiveFrame();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->method, RpcMethod::kError);

  // Nested batch.
  ByteWriter nested;
  {
    ByteWriter inner;
    EncodeFrameHeader(RpcMethod::kInfo, 0, &inner);
    EncodeFrameHeader(RpcMethod::kBatch, static_cast<uint32_t>(inner.size()),
                      &nested);
    nested.PutRaw(inner.bytes().data(), inner.size());
  }
  ASSERT_TRUE(conn->SendFrame(RpcMethod::kBatch, nested).ok());
  reply = conn->ReceiveFrame();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->method, RpcMethod::kError);

  // Truncated sub-frame (header promises more payload than present).
  ByteWriter truncated;
  EncodeFrameHeader(RpcMethod::kEndQuery, 100, &truncated);
  ASSERT_TRUE(conn->SendFrame(RpcMethod::kBatch, truncated).ok());
  reply = conn->ReceiveFrame();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->method, RpcMethod::kError);

  // Still in sync: a well-formed request gets a real answer.
  ASSERT_TRUE(conn->SendFrame(RpcMethod::kInfo, ByteWriter()).ok());
  reply = conn->ReceiveFrame();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->method, RpcMethod::kInfo);
}

// 64+ concurrent connections against one epoll loop and 2 workers: every
// connection handshakes and gets correct scan answers, and the server
// leaks no sessions.
TEST_F(RpcBatchTest, SixtyFourConnectionSoak) {
  constexpr size_t kConnections = 64;
  const double expected = [&] {
    Result<std::shared_ptr<RemoteEndpoint>> e = Connect();
    EXPECT_TRUE(e.ok());
    Result<ExactScanReply> r =
        (*e)->ExactFullScan(ExactScanRequest{ScanQuery(10, 150)});
    EXPECT_TRUE(r.ok());
    return r->value;
  }();

  std::vector<std::shared_ptr<RemoteEndpoint>> endpoints(kConnections);
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    for (size_t i = 0; i < kConnections; ++i) {
      threads.emplace_back([&, i] {
        Result<std::shared_ptr<RemoteEndpoint>> e = Connect();
        if (!e.ok()) {
          failures.fetch_add(1);
          return;
        }
        endpoints[i] = std::move(e).value();
        Result<ExactScanReply> r =
            endpoints[i]->ExactFullScan(ExactScanRequest{ScanQuery(10, 150)});
        if (!r.ok() || r->value != expected) failures.fetch_add(1);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  endpoints.clear();  // Disconnect everything.
  // The loop processes the disconnects asynchronously; sessions (all
  // scan-only here, so none were ever open) must read zero.
  EXPECT_EQ(servers_[0]->num_open_sessions(), 0u);
}

// A peer that stops reading must not stall anyone else: with a tiny
// kernel send buffer, pipelined replies to the slow reader queue in the
// server's per-connection write buffer (partial writes, EPOLLOUT) while
// a second connection is served promptly; the slow reader then drains
// everything, intact and in order.
TEST_F(RpcBatchTest, SlowPeerPartialWritesDoNotBlockOthers) {
  RpcServerOptions options;
  options.send_buffer_bytes = 1024;
  StartServer(options);

  Result<TcpConnection> slow = TcpConnection::Connect("127.0.0.1", port());
  ASSERT_TRUE(slow.ok());
  // Pipeline enough kInfo requests that the replies (schema-bearing,
  // hundreds of bytes each) overflow the shrunken send buffer many
  // times over — without reading a single reply yet.
  constexpr int kPipelined = 200;
  for (int i = 0; i < kPipelined; ++i) {
    ASSERT_TRUE(slow->SendFrame(RpcMethod::kInfo, ByteWriter()).ok());
  }

  // Meanwhile a well-behaved connection must be served immediately.
  Result<std::shared_ptr<RemoteEndpoint>> fast = Connect();
  ASSERT_TRUE(fast.ok());
  Result<ExactScanReply> fast_reply =
      (*fast)->ExactFullScan(ExactScanRequest{ScanQuery(10, 150)});
  ASSERT_TRUE(fast_reply.ok()) << fast_reply.status().ToString();

  // Now drain the slow connection: all replies, in order, undamaged.
  for (int i = 0; i < kPipelined; ++i) {
    Result<RpcFrame> reply = slow->ReceiveFrame();
    ASSERT_TRUE(reply.ok()) << "reply " << i << ": "
                            << reply.status().ToString();
    ASSERT_EQ(reply->method, RpcMethod::kInfo) << "reply " << i;
    ByteReader reader(reply->payload);
    Result<EndpointInfo> info = DecodeEndpointInfo(&reader);
    ASSERT_TRUE(info.ok()) << "reply " << i;
    EXPECT_EQ(info->name, provider_->name());
  }
}

// Fault-injected pin for mid-batch transport failure: when the peer dies
// while calls are parked and coalescing, EVERY caller — the combiner, the
// slots in its swapped batch, and slots parked after the swap — must
// resolve with the poisoned transport status. Nobody may hang on a parked
// slot (a hang here stalls the whole suite, which is the point of the
// pin), and the endpoint must fail fast afterwards instead of blocking.
TEST_F(RpcBatchTest, MidBatchTransportFailureFailsAllCoalescedCallers) {
  Result<std::shared_ptr<RemoteEndpoint>> endpoint = Connect();
  ASSERT_TRUE(endpoint.ok());
  // Prove liveness before the kill.
  Result<CoverReply> warm =
      (*endpoint)->Cover(CoverRequest{1, 7, ScanQuery(10, 150)});
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  constexpr size_t kThreads = 12;
  constexpr int kCallsPerThread = 200;
  std::atomic<uint64_t> resolved{0};
  std::atomic<uint64_t> succeeded{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < kCallsPerThread; ++j) {
        // Sessionful calls ride the doorbell with no auto-retry: a
        // transport error must surface directly.
        const uint64_t id = 100 + t * kCallsPerThread + j;
        Result<CoverReply> reply =
            (*endpoint)->Cover(CoverRequest{id, id * 31 + 1, ScanQuery(5, 180)});
        if (reply.ok()) succeeded.fetch_add(1);
        resolved.fetch_add(1);
      }
    });
  }
  // Kill the server while the batch machinery is saturated: in-flight
  // exchanges die mid-read, parked slots inherit the poison.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  servers_.clear();
  for (std::thread& t : threads) t.join();

  // Every single call resolved — none hung on an unfilled slot.
  EXPECT_EQ(resolved.load(), kThreads * kCallsPerThread);
  // The kill landed mid-run: some calls made it, the rest were failed.
  EXPECT_LT(succeeded.load(), kThreads * kCallsPerThread);

  // Fail-fast post-mortem: new calls on the poisoned connection resolve
  // immediately with an error (no blocking on a dead wire).
  Result<SummaryReply> post =
      (*endpoint)->PublishSummary(SummaryRequest{});
  EXPECT_FALSE(post.ok());
  Result<CoverReply> post_cover =
      (*endpoint)->Cover(CoverRequest{999999, 3, ScanQuery(0, 10)});
  EXPECT_FALSE(post_cover.ok());
}

// DecodeBatchPayload unit coverage: request-side restrictions.
TEST(BatchCodecTest, RequestsOnlyRejectsErrorSubFrames) {
  ByteWriter batch;
  ByteWriter status;
  EncodeStatusPayload(Status::Internal("boom"), &status);
  EncodeFrameHeader(RpcMethod::kError, static_cast<uint32_t>(status.size()),
                    &batch);
  batch.PutRaw(status.bytes().data(), status.size());
  EXPECT_FALSE(DecodeBatchPayload(batch.bytes(), true).ok());
  // The same payload is legal on the reply side (a failed sub-call).
  EXPECT_TRUE(DecodeBatchPayload(batch.bytes(), false).ok());
}

TEST(BatchCodecTest, TrailingGarbageIsRejected) {
  ByteWriter batch;
  EncodeFrameHeader(RpcMethod::kInfo, 0, &batch);
  std::vector<uint8_t> bytes = batch.bytes();
  bytes.push_back(0x7f);  // One stray byte after a complete sub-frame.
  EXPECT_FALSE(DecodeBatchPayload(bytes, true).ok());
}

}  // namespace
}  // namespace fedaqp

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
