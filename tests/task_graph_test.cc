// Tests for the unified task-graph scheduler: graph mechanics (dependency
// order, dynamic fan-out, deterministic first-error reporting, async
// endpoint dispatch) and the execution-stack guarantee that the
// barrier-free batch path is bit-identical to the sequential and
// phase-barrier paths — answers, ledgers, and SimNetwork byte accounting
// — for every pool size, shard count, and schedule interleaving, both
// in-process and over loopback RPC.

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/stopwatch.h"
#include "exec/in_process_endpoint.h"
#include "exec/query_engine.h"
#include "exec/task_graph.h"
#include "exec/thread_pool.h"
#include "federation/orchestrator.h"
#include "rpc/remote_endpoint.h"
#include "rpc/server.h"
#include "workload/datagen.h"

namespace fedaqp {
namespace {

// ------------------------------------------------------------ graph basics --

TEST(TaskGraphTest, RunsDependentsAfterDependencies) {
  ThreadPool pool(4);
  TaskGraph graph(&pool);
  std::mutex mu;
  std::vector<int> order;
  auto record = [&](int id) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(id);
    return Status::OK();
  };
  TaskGraph::TaskId a =
      graph.Add(TaskKey{1, TaskPhase::kGeneric}, [&] { return record(0); });
  TaskGraph::TaskId b = graph.Add(TaskKey{2, TaskPhase::kGeneric},
                                  [&] { return record(1); }, {a});
  TaskGraph::TaskId c = graph.Add(TaskKey{3, TaskPhase::kGeneric},
                                  [&] { return record(2); }, {a});
  graph.Add(TaskKey{4, TaskPhase::kGeneric}, [&] { return record(3); },
            {b, c});
  graph.Run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0);  // the root first
  EXPECT_EQ(order.back(), 3);   // the join last
  EXPECT_TRUE(graph.FirstError().ok());
  EXPECT_EQ(graph.num_tasks(), 4u);
}

TEST(TaskGraphTest, RunsInlineWithoutPool) {
  TaskGraph graph(nullptr);
  const std::thread::id self = std::this_thread::get_id();
  std::vector<int> hits(16, 0);  // unsynchronized: must run on this thread
  for (size_t i = 0; i < hits.size(); ++i) {
    graph.Add(TaskKey{i, TaskPhase::kGeneric}, [&hits, i, self] {
      EXPECT_EQ(std::this_thread::get_id(), self);
      hits[i] += 1;
      return Status::OK();
    });
  }
  graph.Run();
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(TaskGraphTest, EmptyGraphRunReturns) {
  ThreadPool pool(2);
  TaskGraph graph(&pool);
  graph.Run();
  EXPECT_EQ(graph.num_tasks(), 0u);
}

TEST(TaskGraphTest, TasksMayAddTasksWhileRunning) {
  ThreadPool pool(2);
  TaskGraph graph(&pool);
  std::atomic<int> ran{0};
  graph.Add(TaskKey{0, TaskPhase::kGeneric}, [&] {
    for (uint64_t i = 1; i <= 8; ++i) {
      graph.Add(TaskKey{i, TaskPhase::kGeneric}, [&] {
        ran.fetch_add(1);
        return Status::OK();
      });
    }
    return Status::OK();
  });
  graph.Run();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(graph.num_tasks(), 9u);
}

// Failures are contained per node: dependents still run (the orchestrator
// relies on this to keep its per-query failure semantics), and FirstError
// reports by deterministic key order — never completion order.
TEST(TaskGraphTest, FirstErrorIsDeterministicByKeyOrderNotCompletionOrder) {
  for (int rep = 0; rep < 5; ++rep) {
    ThreadPool pool(4);
    TaskGraph graph(&pool);
    std::atomic<int> dependents_ran{0};
    // The LOWER-keyed failure finishes LAST (it sleeps): key order must
    // still win over completion order.
    TaskGraph::TaskId slow_low =
        graph.Add(TaskKey{1, TaskPhase::kSummary, 0}, [&] {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          return Status::Internal("low key, slow failure");
        });
    TaskGraph::TaskId fast_high =
        graph.Add(TaskKey{2, TaskPhase::kSummary, 1},
                  [&] { return Status::Internal("high key, fast failure"); });
    graph.Add(TaskKey{3, TaskPhase::kCombine}, [&] {
      dependents_ran.fetch_add(1);
      return Status::OK();
    }, {slow_low, fast_high});
    graph.Run();
    EXPECT_EQ(dependents_ran.load(), 1) << "rep " << rep;
    EXPECT_EQ(graph.FirstError().message(), "low key, slow failure")
        << "rep " << rep;
    EXPECT_FALSE(graph.status(slow_low).ok());
    EXPECT_FALSE(graph.status(fast_high).ok());
  }
}

// The shard component of the key orders failures within one phase: an
// explicitly materialized shard node (e.g. a future per-shard retry pass)
// with the lower shard id wins over a higher one that failed first.
TEST(TaskGraphTest, ShardKeyComponentBreaksTiesDeterministically) {
  ThreadPool pool(4);
  TaskGraph graph(&pool);
  graph.Add(TaskKey{1, TaskPhase::kScan, 0, /*shard=*/3},
            [] { return Status::Internal("shard 3 failed"); });
  graph.Add(TaskKey{1, TaskPhase::kScan, 0, /*shard=*/1}, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return Status::Internal("shard 1 failed");
  });
  graph.Run();
  EXPECT_EQ(graph.FirstError().message(), "shard 1 failed");
  EXPECT_EQ((TaskKey{1, TaskPhase::kScan, 0, 1}.ToString()),
            "q1/scan/p0/s1");
}

// Both ready-queue implementations must run the identical graph to the
// identical final state: every task exactly once, same statuses, same
// first error — the queues may only change *when* ready work runs, never
// *what* runs or the key-ordered error report.
TEST(TaskGraphTest, ShardedAndCentralizedQueuesAgreeOnFinalState) {
  auto run = [](ReadyQueueKind queue) {
    ThreadPool pool(4);
    TaskGraph graph(&pool, queue);
    std::atomic<uint64_t> runs{0};
    std::atomic<uint64_t> sum{0};
    for (size_t q = 0; q < 16; ++q) {
      TaskGraph::TaskId root = graph.Add(TaskKey{q, TaskPhase::kGeneric, 0, 0},
                                         [&runs] {
                                           runs.fetch_add(1);
                                           return Status::OK();
                                         });
      std::vector<TaskGraph::TaskId> children;
      for (uint32_t s = 0; s < 8; ++s) {
        children.push_back(graph.Add(
            TaskKey{q, TaskPhase::kGeneric, 1, s},
            [&runs, &sum, q, s] {
              runs.fetch_add(1);
              sum.fetch_add(q * 100 + s);
              if (q == 7 && s == 3) return Status::Internal("q7/s3");
              return Status::OK();
            },
            {root}));
      }
      graph.Add(TaskKey{q, TaskPhase::kGeneric, 2, 0},
                [&runs] {
                  runs.fetch_add(1);
                  return Status::OK();
                },
                children);
    }
    graph.Run();
    EXPECT_EQ(runs.load(), graph.num_tasks());
    EXPECT_EQ(graph.FirstError().message(), "q7/s3");
    EXPECT_EQ(graph.scheduler_stats().sharded,
              queue == ReadyQueueKind::kSharded);
    return sum.load();
  };
  EXPECT_EQ(run(ReadyQueueKind::kCentralized), run(ReadyQueueKind::kSharded));
}

// The counters must reflect the queue that actually ran: sharded pops
// land on the shards (modulo steals), priority>=2 nodes sink to the
// backlog heap, and the centralized queue books everything as urgent
// pops.
TEST(TaskGraphTest, SchedulerStatsAccountForEveryPop) {
  auto build_and_run = [](ReadyQueueKind queue) {
    ThreadPool pool(4);
    TaskGraph graph(&pool, queue);
    TaskOptions low;
    low.priority = 2;
    for (size_t q = 0; q < 32; ++q) {
      TaskGraph::TaskId root = graph.Add(TaskKey{q, TaskPhase::kGeneric, 0, 0},
                                         [] { return Status::OK(); });
      graph.Add(TaskKey{q, TaskPhase::kGeneric, 1, 0},
                [] { return Status::OK(); }, {root});
      graph.Add(TaskKey{q, TaskPhase::kGeneric, 2, 0},
                [] { return Status::OK(); }, {root}, nullptr, low);
    }
    graph.Run();
    SchedulerStats stats = graph.scheduler_stats();
    // Every task was popped from exactly one place.
    EXPECT_EQ(stats.local_pops + stats.steals + stats.urgent_pops +
                  stats.backlog_pops,
              graph.num_tasks());
    return stats;
  };

  SchedulerStats central = build_and_run(ReadyQueueKind::kCentralized);
  EXPECT_FALSE(central.sharded);
  EXPECT_EQ(central.local_pops, 0u);
  EXPECT_EQ(central.steals, 0u);
  EXPECT_EQ(central.backlog_pops, 0u);  // Centralized: one heap for all.
  EXPECT_EQ(central.urgent_pops, 32u * 3u);

  SchedulerStats sharded = build_and_run(ReadyQueueKind::kSharded);
  EXPECT_TRUE(sharded.sharded);
  // The 32 low-priority nodes may only run from the backlog heap.
  EXPECT_EQ(sharded.backlog_pops, 32u);
  // The rest came off the shards, locally or by stealing.
  EXPECT_EQ(sharded.local_pops + sharded.steals + sharded.urgent_pops,
            32u * 2u);
}

// A single-worker pool must fall back to the centralized queue even when
// sharding is requested: with no second worker there is nobody to steal
// from, and the strict total order is the cheaper drain.
TEST(TaskGraphTest, ShardedRequestFallsBackToCentralizedOnOneWorker) {
  ThreadPool pool(1);
  TaskGraph graph(&pool, ReadyQueueKind::kSharded);
  for (size_t q = 0; q < 8; ++q) {
    graph.Add(TaskKey{q, TaskPhase::kGeneric}, [] { return Status::OK(); });
  }
  graph.Run();
  EXPECT_FALSE(graph.scheduler_stats().sharded);
  EXPECT_EQ(graph.scheduler_stats().urgent_pops, 8u);
}

TEST(TaskGraphTest, ThrowingBodyBecomesStatus) {
  ThreadPool pool(2);
  TaskGraph graph(&pool);
  TaskGraph::TaskId id = graph.Add(TaskKey{7, TaskPhase::kGeneric},
                                   []() -> Status { throw 42; });
  graph.Run();
  EXPECT_EQ(graph.status(id).code(), StatusCode::kInternal);
}

// The in-task fan-out must complete every child without deadlock even
// when the pool is far smaller than the total fan-out — the parent drains
// its own children — mirroring the nested-ParallelFor stress of PR 2.
TEST(TaskGraphTest, FanOutFromManyNodesOnTinyPoolDoesNotDeadlock) {
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 16;
  ThreadPool pool(2);
  TaskGraph graph(&pool);
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h.store(0);
  for (size_t o = 0; o < kOuter; ++o) {
    graph.Add(TaskKey{o, TaskPhase::kEstimate, static_cast<uint32_t>(o)},
              [&graph, &hits, o] {
                graph.FanOut(kInner, [&hits, o](size_t i) {
                  hits[o * kInner + i].fetch_add(1);
                });
                return Status::OK();
              });
  }
  graph.Run();
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// ForEachShard discovers the scheduler through TaskGraph::Current() and
// fans shards out as child work instead of nesting a ParallelFor whose
// helpers could never run while the graph owns the pool's workers.
TEST(TaskGraphTest, ForEachShardInsideTaskUsesGraphFanOut) {
  ThreadPool pool(3);
  TaskGraph graph(&pool);
  std::atomic<int> covered{0};
  graph.Add(TaskKey{1, TaskPhase::kSummary, 0}, [&] {
    EXPECT_NE(TaskGraph::Current(), nullptr);
    ShardedScanExecutor exec(4, &pool);
    std::vector<double> seconds =
        exec.ForEachShard(12, [&](size_t, ShardRange range) {
          covered.fetch_add(static_cast<int>(range.size()));
        });
    EXPECT_EQ(seconds.size(), 4u);
    return Status::OK();
  });
  graph.Run();
  EXPECT_EQ(covered.load(), 12);
  EXPECT_EQ(TaskGraph::Current(), nullptr);
}

// Shard exceptions keep their PR-2 contract under the graph: contained
// per shard, first-in-shard-order rethrown to the phase body (where the
// orchestrator converts them to a per-endpoint Status).
TEST(TaskGraphTest, ForEachShardExceptionOrderSurvivesGraphMode) {
  ThreadPool pool(3);
  TaskGraph graph(&pool);
  std::string caught;
  graph.Add(TaskKey{1, TaskPhase::kSummary, 0}, [&]() -> Status {
    ShardedScanExecutor exec(4, &pool);
    try {
      exec.ForEachShard(16, [&](size_t shard, ShardRange) {
        if (shard == 2 || shard == 1) {
          throw std::runtime_error("shard " + std::to_string(shard) +
                                   " failed");
        }
      });
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
    return Status::OK();
  });
  graph.Run();
  EXPECT_EQ(caught, "shard 1 failed");
}

// --------------------------------------------------------- async endpoints --

Schema TinySchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddDimension("a", 100).ok());
  return schema;
}

/// Minimal scripted endpoint with a configurable per-call delay and a
/// RemoteEndpoint-style dispatch thread: IssueAsync parks the closure so
/// the scheduler worker returns immediately.
class AsyncFakeEndpoint : public ProviderEndpoint {
 public:
  AsyncFakeEndpoint(const std::string& name, const Schema& schema,
                    std::chrono::milliseconds delay)
      : delay_(delay) {
    info_.name = name;
    info_.schema = schema;
    info_.cluster_capacity = 64;
    info_.n_min = 4;
  }

  ~AsyncFakeEndpoint() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (worker_.joinable()) worker_.join();
  }

  const EndpointInfo& info() const override { return info_; }

  Result<CoverReply> Cover(const CoverRequest&) override {
    std::this_thread::sleep_for(delay_);
    CoverReply reply;
    reply.num_covering_clusters = 10;
    reply.should_approximate = true;
    return reply;
  }
  Result<SummaryReply> PublishSummary(const SummaryRequest&) override {
    SummaryReply reply;
    reply.summary.noisy_avg_r = 0.5;
    reply.summary.noisy_n_q = 10.0;
    return reply;
  }
  Result<EstimateReply> Approximate(const ApproximateRequest&) override {
    std::this_thread::sleep_for(delay_);
    EstimateReply reply;
    reply.estimate.estimate = 1.0;
    reply.estimate.noised = true;
    return reply;
  }
  Result<EstimateReply> ExactAnswer(const ExactAnswerRequest&) override {
    EstimateReply reply;
    reply.estimate.estimate = 1.0;
    reply.estimate.exact = true;
    return reply;
  }
  Result<ExactScanReply> ExactFullScan(const ExactScanRequest&) override {
    return ExactScanReply{};
  }
  void EndQuery(uint64_t) override {}

  void IssueAsync(std::function<void()> call) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!worker_.joinable()) {
        worker_ = std::thread([this] { Loop(); });
      }
      queue_.push_back(std::move(call));
    }
    cv_.notify_one();
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;
      std::function<void()> call = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      call();
      lock.lock();
    }
  }

  EndpointInfo info_;
  std::chrono::milliseconds delay_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::thread worker_;
};

// With asynchronously issued endpoints, even a single-worker graph keeps
// several providers' round-trips in flight at once: a batch over two
// slow-ish endpoints must take ~max, not ~sum, of their serial times.
TEST(TaskGraphTest, AsyncIssueOverlapsSlowEndpointsDespiteOnePoolWorker) {
  Schema schema = TinySchema();
  const auto delay = std::chrono::milliseconds(30);
  std::vector<std::shared_ptr<ProviderEndpoint>> endpoints = {
      std::make_shared<AsyncFakeEndpoint>("p0", schema, delay),
      std::make_shared<AsyncFakeEndpoint>("p1", schema, delay),
      std::make_shared<AsyncFakeEndpoint>("p2", schema, delay),
      std::make_shared<AsyncFakeEndpoint>("p3", schema, delay),
  };
  FederationConfig config;
  config.num_threads = 2;  // pool of 2 drives 4 concurrently-slow providers
  config.seed = 9;
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::CreateFromEndpoints(endpoints, config);
  ASSERT_TRUE(orch.ok()) << orch.status().ToString();
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount).Where(0, 0, 50).Build();

  Stopwatch timer;
  std::vector<BatchOutcome> outcomes = orch->ExecuteBatch({q, q});
  const double seconds = timer.ElapsedSeconds();
  for (const auto& out : outcomes) ASSERT_TRUE(out.ok());
  // Serial cost: 4 endpoints x 2 queries x (Cover 30ms + Approximate
  // 30ms) = 480ms. Overlapped, the batch pipeline depth is ~2 x 60ms;
  // allow generous slack for CI jitter while staying far below serial.
  // ThreadSanitizer inflates every cv/mutex handoff by tens of ms on a
  // loaded runner, so the wall-clock bound only holds uninstrumented —
  // TSan still gets full value from the run (it is hunting races).
#if defined(__SANITIZE_THREAD__)
  const bool timing_is_meaningful = false;
#elif defined(__has_feature)
  const bool timing_is_meaningful = !__has_feature(thread_sanitizer);
#else
  const bool timing_is_meaningful = true;
#endif
  if (timing_is_meaningful) {
    EXPECT_LT(seconds, 0.360) << "async issue failed to overlap endpoints";
  }
}

// -------------------------------------------- execution-stack determinism --

std::unique_ptr<DataProvider> MakeProvider(size_t rows, uint64_t seed) {
  SyntheticConfig cfg;
  cfg.rows = rows;
  cfg.seed = seed;
  cfg.dims = {{"a", 200, DistributionKind::kNormal, 0.5},
              {"b", 100, DistributionKind::kZipf, 1.2}};
  Result<Table> t = GenerateSynthetic(cfg);
  EXPECT_TRUE(t.ok());
  Result<Table> tensor = t->BuildCountTensor({0, 1});
  EXPECT_TRUE(tensor.ok());
  DataProvider::Options popts;
  popts.storage.cluster_capacity = 128;
  popts.storage.layout = ClusterLayout::kShuffled;
  popts.storage.shuffle_seed = seed;
  popts.n_min = 4;
  popts.seed = seed * 3 + 1;
  Result<std::unique_ptr<DataProvider>> p = DataProvider::Create(*tensor, popts);
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

std::vector<std::unique_ptr<DataProvider>> MakeFederation(size_t providers) {
  std::vector<std::unique_ptr<DataProvider>> out;
  for (size_t i = 0; i < providers; ++i) {
    out.push_back(MakeProvider(5000, 301 + 17 * i));
  }
  return out;
}

std::vector<DataProvider*> Ptrs(
    std::vector<std::unique_ptr<DataProvider>>& providers) {
  std::vector<DataProvider*> out;
  for (auto& p : providers) out.push_back(p.get());
  return out;
}

FederationConfig BaseConfig(size_t threads, size_t shards,
                            BatchScheduler scheduler) {
  FederationConfig config;
  config.per_query_budget = {1.0, 1e-3};
  config.sampling_rate = 0.3;
  config.total_xi = 1e6;
  config.total_psi = 1e3;
  config.seed = 515;
  config.num_threads = threads;
  config.num_scan_shards = shards;
  config.scheduler = scheduler;
  return config;
}

std::vector<RangeQuery> MixedWorkload() {
  std::vector<RangeQuery> queries;
  for (int i = 0; i < 3; ++i) {
    queries.push_back(
        RangeQueryBuilder(Aggregation::kSum).Where(0, 18 + i, 178).Build());
    queries.push_back(
        RangeQueryBuilder(Aggregation::kCount).Where(0, 10, 160 - i).Build());
  }
  return queries;
}

/// Everything a batch outcome exposes deterministically.
struct Fingerprint {
  std::vector<double> estimates;
  std::vector<std::vector<size_t>> allocations;
  std::vector<size_t> rows_scanned;
  std::vector<uint64_t> network_bytes;
  std::vector<uint64_t> network_messages;
  double spent_epsilon = 0.0;

  bool operator==(const Fingerprint& o) const {
    return estimates == o.estimates && allocations == o.allocations &&
           rows_scanned == o.rows_scanned && network_bytes == o.network_bytes &&
           network_messages == o.network_messages &&
           spent_epsilon == o.spent_epsilon;
  }
};

Fingerprint RunBatch(const FederationConfig& config,
                     const std::vector<RangeQuery>& queries) {
  auto providers = MakeFederation(3);
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::Create(Ptrs(providers), config);
  EXPECT_TRUE(orch.ok());
  std::vector<BatchOutcome> outcomes = orch->ExecuteBatch(queries);
  Fingerprint fp;
  for (const auto& out : outcomes) {
    EXPECT_TRUE(out.ok()) << out.status.ToString();
    fp.estimates.push_back(out.response.estimate);
    fp.allocations.push_back(out.response.allocation);
    fp.rows_scanned.push_back(out.response.breakdown.rows_scanned);
    fp.network_bytes.push_back(out.response.breakdown.network_bytes);
    fp.network_messages.push_back(out.response.breakdown.network_messages);
  }
  fp.spent_epsilon = orch->accountant().spent().epsilon;
  return fp;
}

// The acceptance criterion of the refactor: the task-graph batch path is
// bit-identical to the sequential/batched-barrier paths — answers,
// ledgers, SimNetwork bytes — for pool sizes {1,2,8} x shard counts
// {1,3,16}, under whatever interleaving each run's scheduling produced.
TEST(TaskGraphDeterminismTest, BitIdenticalToBarrierAcrossPoolsAndShards) {
  const std::vector<RangeQuery> queries = MixedWorkload();
  // Reference: the lock-step barrier scheduler, single thread, unsharded.
  const Fingerprint reference =
      RunBatch(BaseConfig(1, 1, BatchScheduler::kPhaseBarrier), queries);
  ASSERT_EQ(reference.estimates.size(), queries.size());

  for (size_t threads : {1u, 2u, 8u}) {
    for (size_t shards : {1u, 3u, 16u}) {
      Fingerprint graph = RunBatch(
          BaseConfig(threads, shards, BatchScheduler::kTaskGraph), queries);
      EXPECT_TRUE(graph == reference)
          << "task graph diverged at pool=" << threads << " shards=" << shards;
      // Same config under the barrier scheduler: also identical.
      Fingerprint barrier = RunBatch(
          BaseConfig(threads, shards, BatchScheduler::kPhaseBarrier), queries);
      EXPECT_TRUE(barrier == reference)
          << "barrier diverged at pool=" << threads << " shards=" << shards;
    }
  }

  // Sequential one-at-a-time execution ties the knot: same answers again.
  auto providers = MakeFederation(3);
  Result<QueryOrchestrator> seq = QueryOrchestrator::Create(
      Ptrs(providers), BaseConfig(1, 1, BatchScheduler::kTaskGraph));
  ASSERT_TRUE(seq.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<QueryResponse> resp = seq->Execute(queries[i]);
    ASSERT_TRUE(resp.ok());
    EXPECT_DOUBLE_EQ(resp->estimate, reference.estimates[i]) << "query " << i;
  }
}

// Schedule-interleaving stress: repeated pooled runs of the same batch
// must reproduce the same fingerprint every time even though the graph
// interleaves differently run to run.
TEST(TaskGraphDeterminismTest, RepeatedPooledRunsAreStable) {
  const std::vector<RangeQuery> queries = MixedWorkload();
  const FederationConfig config =
      BaseConfig(8, 3, BatchScheduler::kTaskGraph);
  const Fingerprint first = RunBatch(config, queries);
  for (int rep = 0; rep < 4; ++rep) {
    EXPECT_TRUE(RunBatch(config, queries) == first) << "rep " << rep;
  }
}

// SMC release mode draws from the aggregator's single RNG stream at every
// combine; the graph chains combines in submission order, so the stream —
// and therefore every estimate — must match the barrier path bit-for-bit.
TEST(TaskGraphDeterminismTest, SmcModeKeepsAggregatorStreamOrder) {
  std::vector<RangeQuery> queries = MixedWorkload();
  FederationConfig barrier = BaseConfig(1, 1, BatchScheduler::kPhaseBarrier);
  barrier.mode = ReleaseMode::kSmc;
  const Fingerprint reference = RunBatch(barrier, queries);
  for (size_t threads : {2u, 8u}) {
    FederationConfig graph = BaseConfig(threads, 3, BatchScheduler::kTaskGraph);
    graph.mode = ReleaseMode::kSmc;
    EXPECT_TRUE(RunBatch(graph, queries) == reference)
        << "SMC diverged at pool=" << threads;
  }
}

// Per-analyst ledger charges are part of the pinned surface: the engine's
// admission refusals and spends must not depend on the scheduler.
TEST(TaskGraphDeterminismTest, EngineLedgersMatchAcrossSchedulers) {
  auto run = [](BatchScheduler scheduler, size_t threads) {
    auto providers = MakeFederation(3);
    QueryEngineOptions opts;
    opts.protocol = BaseConfig(threads, 3, scheduler);
    opts.analysts = {{"alice", 1e6, 1e3}, {"bob", 2.5, 1.0}};
    Result<std::unique_ptr<QueryEngine>> engine =
        QueryEngine::Create(Ptrs(providers), opts);
    EXPECT_TRUE(engine.ok());
    std::vector<AnalystQuery> batch;
    for (const RangeQuery& q : MixedWorkload()) {
      batch.push_back({"alice", q});
      batch.push_back({"bob", q});  // bob exhausts after two queries
    }
    std::vector<BatchOutcome> outcomes = (*engine)->ExecuteBatch(batch);
    std::vector<std::pair<int, double>> fingerprint;
    for (const auto& out : outcomes) {
      fingerprint.emplace_back(static_cast<int>(out.status.code()),
                               out.ok() ? out.response.estimate : 0.0);
    }
    Result<PrivacyBudget> alice = (*engine)->ledger().Spent("alice");
    Result<PrivacyBudget> bob = (*engine)->ledger().Spent("bob");
    EXPECT_TRUE(alice.ok());
    EXPECT_TRUE(bob.ok());
    fingerprint.emplace_back(-1, alice->epsilon);
    fingerprint.emplace_back(-2, bob->epsilon);
    return fingerprint;
  };
  auto reference = run(BatchScheduler::kPhaseBarrier, 1);
  EXPECT_EQ(run(BatchScheduler::kTaskGraph, 1), reference);
  EXPECT_EQ(run(BatchScheduler::kTaskGraph, 8), reference);
}

// Failure parity: a provider failing one query mid-batch must produce the
// same per-outcome statuses under both schedulers, and healthy queries
// must keep their answers.
class FailingEndpoint : public ProviderEndpoint {
 public:
  FailingEndpoint(std::shared_ptr<ProviderEndpoint> inner, uint64_t fail_id)
      : inner_(std::move(inner)), fail_id_(fail_id) {}

  const EndpointInfo& info() const override { return inner_->info(); }
  Result<CoverReply> Cover(const CoverRequest& request) override {
    if (request.query_id == fail_id_) {
      return Status::Internal("scripted cover failure");
    }
    return inner_->Cover(request);
  }
  Result<SummaryReply> PublishSummary(const SummaryRequest& r) override {
    return inner_->PublishSummary(r);
  }
  Result<EstimateReply> Approximate(const ApproximateRequest& r) override {
    return inner_->Approximate(r);
  }
  Result<EstimateReply> ExactAnswer(const ExactAnswerRequest& r) override {
    return inner_->ExactAnswer(r);
  }
  Result<ExactScanReply> ExactFullScan(const ExactScanRequest& r) override {
    return inner_->ExactFullScan(r);
  }
  void EndQuery(uint64_t id) override { inner_->EndQuery(id); }

 private:
  std::shared_ptr<ProviderEndpoint> inner_;
  uint64_t fail_id_;
};

TEST(TaskGraphDeterminismTest, MidBatchProviderFailureMatchesBarrier) {
  auto run = [](BatchScheduler scheduler, size_t threads) {
    auto providers = MakeFederation(2);
    Result<std::vector<std::shared_ptr<ProviderEndpoint>>> inner =
        MakeInProcessEndpoints(Ptrs(providers));
    EXPECT_TRUE(inner.ok());
    // Query id 2 (the second of the batch) fails at provider 1.
    std::vector<std::shared_ptr<ProviderEndpoint>> endpoints = {
        (*inner)[0],
        std::make_shared<FailingEndpoint>((*inner)[1], /*fail_id=*/2)};
    Result<QueryOrchestrator> orch = QueryOrchestrator::CreateFromEndpoints(
        endpoints, BaseConfig(threads, 1, scheduler));
    EXPECT_TRUE(orch.ok());
    std::vector<BatchOutcome> outcomes =
        orch->ExecuteBatch(MixedWorkload());
    std::vector<std::pair<int, double>> fingerprint;
    for (const auto& out : outcomes) {
      fingerprint.emplace_back(static_cast<int>(out.status.code()),
                               out.ok() ? out.response.estimate : 0.0);
    }
    return fingerprint;
  };
  auto reference = run(BatchScheduler::kPhaseBarrier, 1);
  int failures = 0;
  for (const auto& entry : reference) {
    if (entry.first != 0) ++failures;
  }
  EXPECT_EQ(failures, 1);  // exactly the scripted query fails
  EXPECT_EQ(run(BatchScheduler::kTaskGraph, 1), reference);
  EXPECT_EQ(run(BatchScheduler::kTaskGraph, 4), reference);
}

// ------------------------------------------------------- loopback parity --

class TaskGraphLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    providers_.push_back(MakeProvider(12000, 3));
    providers_.push_back(MakeProvider(16000, 5));
    for (auto& p : providers_) {
      Result<std::unique_ptr<RpcProviderServer>> server =
          RpcProviderServer::Start(p.get());
      ASSERT_TRUE(server.ok()) << server.status().ToString();
      servers_.push_back(std::move(server).value());
    }
  }

  Result<std::vector<std::shared_ptr<ProviderEndpoint>>> ConnectRemote() {
    std::vector<std::string> host_ports;
    for (auto& s : servers_) {
      host_ports.push_back("127.0.0.1:" + std::to_string(s->port()));
    }
    return RemoteEndpoint::ConnectAll(host_ports);
  }

  std::vector<std::unique_ptr<DataProvider>> providers_;
  std::vector<std::unique_ptr<RpcProviderServer>> servers_;
};

// Over real loopback sockets — where endpoint tasks ride per-connection
// dispatch threads — the pipelined path must still be bit-identical to
// the in-process barrier reference for every pool size and shard count.
TEST_F(TaskGraphLoopbackTest, PipelinedLoopbackMatchesInProcessBarrier) {
  const std::vector<RangeQuery> queries = MixedWorkload();

  std::vector<DataProvider*> raw;
  for (auto& p : providers_) raw.push_back(p.get());
  Result<QueryOrchestrator> reference_orch = QueryOrchestrator::Create(
      raw, BaseConfig(1, 1, BatchScheduler::kPhaseBarrier));
  ASSERT_TRUE(reference_orch.ok());
  std::vector<BatchOutcome> reference =
      reference_orch->ExecuteBatch(queries);

  for (size_t threads : {1u, 2u, 8u}) {
    for (size_t shards : {1u, 16u}) {
      Result<std::vector<std::shared_ptr<ProviderEndpoint>>> remote =
          ConnectRemote();
      ASSERT_TRUE(remote.ok()) << remote.status().ToString();
      Result<QueryOrchestrator> orch = QueryOrchestrator::CreateFromEndpoints(
          std::move(remote).value(),
          BaseConfig(threads, shards, BatchScheduler::kTaskGraph));
      ASSERT_TRUE(orch.ok()) << orch.status().ToString();
      std::vector<BatchOutcome> outcomes = orch->ExecuteBatch(queries);
      ASSERT_EQ(outcomes.size(), reference.size());
      for (size_t i = 0; i < outcomes.size(); ++i) {
        ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].status.ToString();
        EXPECT_EQ(outcomes[i].response.estimate,
                  reference[i].response.estimate)
            << "pool=" << threads << " shards=" << shards << " query=" << i;
        EXPECT_EQ(outcomes[i].response.allocation,
                  reference[i].response.allocation);
        EXPECT_EQ(outcomes[i].response.breakdown.network_bytes,
                  reference[i].response.breakdown.network_bytes);
        EXPECT_EQ(outcomes[i].response.breakdown.network_messages,
                  reference[i].response.breakdown.network_messages);
      }
      // All sessions released despite the pipelined shutdown order.
      for (auto& s : servers_) {
        EXPECT_EQ(s->num_open_sessions(), 0u);
      }
    }
  }
}

// Real wire bytes must equal SimNetwork's charges on the pipelined path
// too, plus exactly the outer-header overhead of whatever doorbell
// coalescing happened to occur (the graph reorders calls but never
// changes them; batching only wraps them).
TEST_F(TaskGraphLoopbackTest, PipelinedWireBytesEqualCharges) {
  Result<std::vector<std::shared_ptr<ProviderEndpoint>>> remote =
      ConnectRemote();
  ASSERT_TRUE(remote.ok());
  std::vector<RemoteEndpoint*> raw;
  for (auto& e : *remote) raw.push_back(static_cast<RemoteEndpoint*>(e.get()));
  Result<QueryOrchestrator> orch = QueryOrchestrator::CreateFromEndpoints(
      std::move(remote).value(), BaseConfig(4, 1, BatchScheduler::kTaskGraph));
  ASSERT_TRUE(orch.ok());

  uint64_t base = 0;
  for (auto* e : raw) base += e->bytes_sent() + e->bytes_received();
  uint64_t charged = 0;
  std::vector<BatchOutcome> outcomes = orch->ExecuteBatch(MixedWorkload());
  for (const auto& out : outcomes) {
    ASSERT_TRUE(out.ok());
    charged += out.response.breakdown.network_bytes;
  }
  uint64_t moved = 0;
  uint64_t overhead = 0;
  for (auto* e : raw) {
    moved += e->bytes_sent() + e->bytes_received();
    overhead += e->batch_overhead_bytes();
  }
  EXPECT_EQ(moved - base, charged + overhead);
}

}  // namespace
}  // namespace fedaqp
