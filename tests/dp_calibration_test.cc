// Statistical calibration checks: the noise observed at the protocol
// surface must match the closed-form scales the paper derives. These are
// the tests that catch a mis-wired sensitivity (e.g. forgetting the eps/2
// split of Eq. 5 or the factor 2 in the smooth-sensitivity scale) that
// unit tests of the mechanisms alone cannot see.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/math.h"
#include "common/rng.h"
#include "dp/geometric.h"
#include "dp/sensitivity.h"
#include "dp/snapping.h"
#include "federation/provider.h"
#include "workload/datagen.h"

namespace fedaqp {
namespace {

std::unique_ptr<DataProvider> MakeProvider(size_t n_min, size_t capacity) {
  SyntheticConfig cfg;
  cfg.rows = 20000;
  cfg.seed = 77;
  cfg.dims = {{"a", 120, DistributionKind::kNormal, 0.5},
              {"b", 60, DistributionKind::kZipf, 1.2}};
  Result<Table> t = GenerateSynthetic(cfg);
  EXPECT_TRUE(t.ok());
  Result<Table> tensor = t->BuildCountTensor({0, 1});
  EXPECT_TRUE(tensor.ok());
  DataProvider::Options popts;
  popts.storage.cluster_capacity = capacity;
  popts.storage.layout = ClusterLayout::kShuffled;
  popts.n_min = n_min;
  popts.seed = 31337;
  Result<std::unique_ptr<DataProvider>> p =
      DataProvider::Create(*tensor, popts);
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

TEST(DpCalibrationTest, SummaryNoiseMatchesEq5Scales) {
  // Eq. 5: ~N^Q gets Lap(1 / (eps_O/2)), ~Avg(R) gets
  // Lap(DeltaAvgR / (eps_O/2)). Verify the empirical standard deviations.
  std::unique_ptr<DataProvider> p = MakeProvider(/*n_min=*/8,
                                                 /*capacity=*/256);
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount)
                     .Where(0, 10, 100)
                     .Build();
  CoverInfo cover = p->Cover(q, nullptr);
  const double eps_o = 0.4;
  const double half = eps_o / 2.0;
  double delta_avg = DeltaAvgR(256, q.num_constrained_dims(), 8);

  RunningStats nq_stats, avg_stats;
  for (int rep = 0; rep < 30000; ++rep) {
    Result<ProviderSummary> s = p->PublishSummary(q, cover, eps_o);
    ASSERT_TRUE(s.ok());
    nq_stats.Add(s->noisy_n_q);
    avg_stats.Add(s->noisy_avg_r);
  }
  // Laplace(b) has stddev b*sqrt(2).
  double expected_nq_sd = (1.0 / half) * std::sqrt(2.0);
  double expected_avg_sd = (delta_avg / half) * std::sqrt(2.0);
  EXPECT_NEAR(nq_stats.stddev(), expected_nq_sd, expected_nq_sd * 0.05);
  EXPECT_NEAR(avg_stats.stddev(), expected_avg_sd, expected_avg_sd * 0.05);
  // And they are centred on the truth.
  EXPECT_NEAR(nq_stats.mean(), static_cast<double>(cover.NumClusters()),
              expected_nq_sd * 0.05);
  EXPECT_NEAR(avg_stats.mean(), cover.AverageR(), expected_avg_sd * 0.05);
}

TEST(DpCalibrationTest, ExactPathNoiseMatchesUnitChangeOverEps) {
  std::unique_ptr<DataProvider> p = MakeProvider(8, 256);
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount)
                     .Where(0, 20, 40)
                     .Build();
  CoverInfo cover = p->Cover(q, nullptr);
  int64_t truth = p->store().ScanClusters(q, cover.cluster_ids)->count;
  const double eps_e = 0.8;
  RunningStats st;
  for (int rep = 0; rep < 30000; ++rep) {
    Result<LocalEstimate> est =
        p->ExactAnswer(q, cover, eps_e, /*add_noise=*/true);
    ASSERT_TRUE(est.ok());
    st.Add(est->estimate);
  }
  double expected_sd = (1.0 / eps_e) * std::sqrt(2.0);  // GS(count)=1
  EXPECT_NEAR(st.mean(), static_cast<double>(truth), expected_sd * 0.05);
  EXPECT_NEAR(st.stddev(), expected_sd, expected_sd * 0.05);
}

TEST(DpCalibrationTest, ApproximatePathNoiseTracksReportedSensitivity) {
  // Algorithm 3 line 10: the released value deviates from the clean
  // estimate by Lap(2*S_LS/eps_E). Compare noised vs clean runs under the
  // same provider RNG by measuring the spread of (noised - truth) against
  // the reported sensitivity's implied scale.
  std::unique_ptr<DataProvider> p = MakeProvider(8, 256);
  RangeQuery q = RangeQueryBuilder(Aggregation::kSum)
                     .Where(0, 10, 110)
                     .Build();
  CoverInfo cover = p->Cover(q, nullptr);
  ASSERT_TRUE(p->ShouldApproximate(cover));
  const double eps_s = 0.1, eps_e = 0.8, delta = 1e-3;
  const size_t sample = 12;

  // The sampling spread (no noise) and the total spread (with noise).
  RunningStats clean, noised, sens_stats;
  for (int rep = 0; rep < 4000; ++rep) {
    Result<LocalEstimate> c =
        p->Approximate(q, cover, sample, eps_s, eps_e, delta, false);
    Result<LocalEstimate> n =
        p->Approximate(q, cover, sample, eps_s, eps_e, delta, true);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(n.ok());
    clean.Add(c->estimate);
    noised.Add(n->estimate);
    sens_stats.Add(n->sensitivity);
  }
  // Var(total) = Var(sampling) + Var(Laplace), with the Laplace scale
  // 2*mean_sens/eps_E (sensitivity varies per run; use its mean).
  double lap_scale = 2.0 * sens_stats.mean() / eps_e;
  double expected_total_var =
      clean.variance() + 2.0 * lap_scale * lap_scale;
  EXPECT_NEAR(noised.variance(), expected_total_var,
              expected_total_var * 0.25);
  // Means agree (noise is centred).
  EXPECT_NEAR(noised.mean(), clean.mean(),
              4.0 * std::sqrt(expected_total_var / 4000.0) +
                  0.01 * std::abs(clean.mean()));
}

TEST(DpCalibrationTest, GeometricScaleTracksEpsilon) {
  // stddev of the two-sided geometric ~ sqrt(2 alpha)/(1-alpha),
  // alpha = exp(-eps). Check the eps ordering across a sweep.
  Rng rng(3);
  double prev_sd = 1e18;
  for (double eps : {0.2, 0.5, 1.0, 2.0}) {
    Result<GeometricMechanism> m = GeometricMechanism::Create(eps, 1.0);
    ASSERT_TRUE(m.ok());
    RunningStats st;
    for (int i = 0; i < 40000; ++i) {
      st.Add(static_cast<double>(m->AddNoise(0, &rng)));
    }
    double alpha = std::exp(-eps);
    double expected_sd = std::sqrt(2.0 * alpha) / (1.0 - alpha);
    EXPECT_NEAR(st.stddev(), expected_sd, expected_sd * 0.1) << eps;
    EXPECT_LT(st.stddev(), prev_sd);
    prev_sd = st.stddev();
  }
}

TEST(DpCalibrationTest, SnappingScaleTracksEpsilon) {
  Rng rng(5);
  double prev_sd = 1e18;
  for (double eps : {0.2, 0.5, 1.0}) {
    Result<SnappingMechanism> m = SnappingMechanism::Create(eps, 1.0, 1e9);
    ASSERT_TRUE(m.ok());
    RunningStats st;
    for (int i = 0; i < 40000; ++i) st.Add(m->AddNoise(0.0, &rng));
    // Snapping wraps a Laplace(1/eps) core; its sd is close to sqrt(2)/eps
    // (rounding adds at most lambda/sqrt(12) in quadrature).
    double core_sd = std::sqrt(2.0) / eps;
    EXPECT_NEAR(st.stddev(), core_sd, core_sd * 0.15) << eps;
    EXPECT_LT(st.stddev(), prev_sd);
    prev_sd = st.stddev();
  }
}

}  // namespace
}  // namespace fedaqp
