// Unit tests for the DP mechanisms: Laplace, geometric, snapping and the
// Exponential Mechanism, including statistical checks of their noise
// distributions under fixed seeds.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/math.h"
#include "common/rng.h"
#include "dp/exponential.h"
#include "dp/geometric.h"
#include "dp/laplace.h"
#include "dp/snapping.h"

namespace fedaqp {
namespace {

// --------------------------------------------------------------- Laplace --

TEST(LaplaceTest, CreateValidatesInputs) {
  EXPECT_TRUE(LaplaceMechanism::Create(1.0, 1.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Create(0.0, 1.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Create(-1.0, 1.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Create(1.0, 0.0).ok());
}

TEST(LaplaceTest, ScaleIsSensitivityOverEpsilon) {
  Result<LaplaceMechanism> m = LaplaceMechanism::Create(0.5, 2.0);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->scale(), 4.0);
}

TEST(LaplaceTest, NoiseIsZeroMeanWithExpectedSpread) {
  Rng rng(101);
  RunningStats st;
  const double scale = 3.0;
  for (int i = 0; i < 200000; ++i) st.Add(SampleLaplace(scale, &rng));
  // Laplace(b): mean 0, stddev b*sqrt(2).
  EXPECT_NEAR(st.mean(), 0.0, 0.05);
  EXPECT_NEAR(st.stddev(), scale * std::sqrt(2.0), 0.1);
}

TEST(LaplaceTest, NoiseMedianNearZeroAndSymmetric) {
  Rng rng(103);
  int pos = 0, neg = 0;
  for (int i = 0; i < 100000; ++i) {
    double x = SampleLaplace(1.0, &rng);
    (x >= 0 ? pos : neg)++;
  }
  EXPECT_NEAR(static_cast<double>(pos) / (pos + neg), 0.5, 0.01);
}

TEST(LaplaceTest, AddNoiseCentersOnValue) {
  Rng rng(107);
  Result<LaplaceMechanism> m = LaplaceMechanism::Create(1.0, 1.0);
  ASSERT_TRUE(m.ok());
  RunningStats st;
  for (int i = 0; i < 100000; ++i) st.Add(m->AddNoise(42.0, &rng));
  EXPECT_NEAR(st.mean(), 42.0, 0.05);
}

TEST(LaplaceTest, TailDecaysExponentially) {
  // P(|X| > t*b) = exp(-t); compare empirical tail at t=2 and t=4.
  Rng rng(109);
  const int n = 200000;
  int beyond2 = 0, beyond4 = 0;
  for (int i = 0; i < n; ++i) {
    double x = std::abs(SampleLaplace(1.0, &rng));
    if (x > 2.0) ++beyond2;
    if (x > 4.0) ++beyond4;
  }
  EXPECT_NEAR(beyond2 / static_cast<double>(n), std::exp(-2.0), 0.01);
  EXPECT_NEAR(beyond4 / static_cast<double>(n), std::exp(-4.0), 0.005);
}

// ------------------------------------------------------------- Geometric --

TEST(GeometricTest, CreateValidatesInputs) {
  EXPECT_TRUE(GeometricMechanism::Create(1.0, 1.0).ok());
  EXPECT_FALSE(GeometricMechanism::Create(0.0, 1.0).ok());
  EXPECT_FALSE(GeometricMechanism::Create(1.0, -1.0).ok());
}

TEST(GeometricTest, NoiseIsIntegerAndZeroMean) {
  Rng rng(113);
  Result<GeometricMechanism> m = GeometricMechanism::Create(0.5, 1.0);
  ASSERT_TRUE(m.ok());
  RunningStats st;
  for (int i = 0; i < 100000; ++i) {
    int64_t v = m->AddNoise(10, &rng);
    st.Add(static_cast<double>(v));
  }
  EXPECT_NEAR(st.mean(), 10.0, 0.1);
}

TEST(GeometricTest, LargerEpsilonMeansLessNoise) {
  Rng rng(127);
  Result<GeometricMechanism> loose = GeometricMechanism::Create(0.1, 1.0);
  Result<GeometricMechanism> tight = GeometricMechanism::Create(2.0, 1.0);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(tight.ok());
  RunningStats sl, st;
  for (int i = 0; i < 50000; ++i) {
    sl.Add(static_cast<double>(loose->AddNoise(0, &rng)));
    st.Add(static_cast<double>(tight->AddNoise(0, &rng)));
  }
  EXPECT_GT(sl.stddev(), st.stddev() * 5.0);
}

// -------------------------------------------------------------- Snapping --

TEST(SnappingTest, CreateValidatesInputs) {
  EXPECT_TRUE(SnappingMechanism::Create(1.0, 1.0, 1e6).ok());
  EXPECT_FALSE(SnappingMechanism::Create(0.0, 1.0, 1e6).ok());
  EXPECT_FALSE(SnappingMechanism::Create(1.0, 1.0, 0.0).ok());
}

TEST(SnappingTest, OutputOnLambdaGridAndClamped) {
  Rng rng(131);
  Result<SnappingMechanism> m = SnappingMechanism::Create(1.0, 1.0, 100.0);
  ASSERT_TRUE(m.ok());
  for (int i = 0; i < 5000; ++i) {
    double v = m->AddNoise(50.0, &rng);
    EXPECT_LE(v, 100.0);
    EXPECT_GE(v, -100.0);
    double steps = v / m->lambda();
    EXPECT_NEAR(steps, std::round(steps), 1e-9);
  }
}

TEST(SnappingTest, CentersOnValue) {
  Rng rng(137);
  Result<SnappingMechanism> m = SnappingMechanism::Create(0.5, 1.0, 1e6);
  ASSERT_TRUE(m.ok());
  RunningStats st;
  for (int i = 0; i < 100000; ++i) st.Add(m->AddNoise(123.0, &rng));
  EXPECT_NEAR(st.mean(), 123.0, 0.5);
}

// ----------------------------------------------------------- Exponential --

TEST(ExponentialTest, CreateValidatesInputs) {
  EXPECT_TRUE(ExponentialMechanism::Create(1.0, 0.5).ok());
  EXPECT_FALSE(ExponentialMechanism::Create(0.0, 0.5).ok());
  EXPECT_FALSE(ExponentialMechanism::Create(1.0, 0.0).ok());
}

TEST(ExponentialTest, EmptyCandidateSetFails) {
  Rng rng(139);
  Result<ExponentialMechanism> m = ExponentialMechanism::Create(1.0, 1.0);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->SelectOne({}, &rng).ok());
  EXPECT_FALSE(m->SelectWithReplacement({}, 3, &rng).ok());
}

TEST(ExponentialTest, SelectionProbabilitiesMatchDefinition) {
  Result<ExponentialMechanism> m = ExponentialMechanism::Create(2.0, 0.5);
  ASSERT_TRUE(m.ok());
  std::vector<double> scores{0.1, 0.4, 0.2};
  std::vector<double> p = m->SelectionProbabilities(scores);
  // exp(eps * s / (2*Delta)) with eps=2, Delta=0.5 -> exp(2*s).
  double w0 = std::exp(2.0 * 0.1), w1 = std::exp(2.0 * 0.4),
         w2 = std::exp(2.0 * 0.2);
  double total = w0 + w1 + w2;
  EXPECT_NEAR(p[0], w0 / total, 1e-12);
  EXPECT_NEAR(p[1], w1 / total, 1e-12);
  EXPECT_NEAR(p[2], w2 / total, 1e-12);
}

TEST(ExponentialTest, EmpiricalFrequenciesTrackProbabilities) {
  Rng rng(149);
  Result<ExponentialMechanism> m = ExponentialMechanism::Create(1.0, 0.1);
  ASSERT_TRUE(m.ok());
  std::vector<double> scores{0.9, 0.5, 0.1};
  std::vector<double> expected = m->SelectionProbabilities(scores);
  std::vector<int> counts(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    Result<size_t> pick = m->SelectOne(scores, &rng);
    ASSERT_TRUE(pick.ok());
    counts[*pick]++;
  }
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), expected[i], 0.02);
  }
}

TEST(ExponentialTest, HigherEpsilonConcentratesOnBest) {
  Rng rng(151);
  std::vector<double> scores{1.0, 0.0};
  Result<ExponentialMechanism> weak = ExponentialMechanism::Create(0.01, 1.0);
  Result<ExponentialMechanism> strong = ExponentialMechanism::Create(20.0, 1.0);
  ASSERT_TRUE(weak.ok());
  ASSERT_TRUE(strong.ok());
  EXPECT_NEAR(weak->SelectionProbabilities(scores)[0], 0.5, 0.01);
  EXPECT_GT(strong->SelectionProbabilities(scores)[0], 0.99);
}

TEST(ExponentialTest, WithReplacementDrawsRequestedCount) {
  Rng rng(157);
  Result<ExponentialMechanism> m = ExponentialMechanism::Create(1.0, 1.0);
  ASSERT_TRUE(m.ok());
  Result<std::vector<size_t>> picks =
      m->SelectWithReplacement({0.5, 0.5, 0.5}, 10, &rng);
  ASSERT_TRUE(picks.ok());
  EXPECT_EQ(picks->size(), 10u);
  for (size_t idx : *picks) EXPECT_LT(idx, 3u);
}

TEST(ExponentialTest, WithoutReplacementYieldsDistinct) {
  Rng rng(163);
  Result<ExponentialMechanism> m = ExponentialMechanism::Create(1.0, 1.0);
  ASSERT_TRUE(m.ok());
  std::vector<double> scores{0.9, 0.7, 0.5, 0.3, 0.1};
  Result<std::vector<size_t>> picks =
      m->SelectWithoutReplacement(scores, 5, &rng);
  ASSERT_TRUE(picks.ok());
  std::vector<bool> seen(5, false);
  for (size_t idx : *picks) {
    EXPECT_FALSE(seen[idx]) << "duplicate pick";
    seen[idx] = true;
  }
  EXPECT_FALSE(m->SelectWithoutReplacement(scores, 6, &rng).ok());
}

TEST(ExponentialTest, LargeScoresDoNotOverflow) {
  Rng rng(167);
  // eps/(2*Delta) = 5e5; naive exp(5e5 * score) overflows; the max-shift
  // implementation must survive and still prefer the best score.
  Result<ExponentialMechanism> m = ExponentialMechanism::Create(1e6, 1.0);
  ASSERT_TRUE(m.ok());
  std::vector<double> scores{1000.0, 999.0};
  std::vector<double> p = m->SelectionProbabilities(scores);
  EXPECT_GT(p[0], 0.999);
  EXPECT_TRUE(std::isfinite(p[0]));
  Result<size_t> pick = m->SelectOne(scores, &rng);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 0u);
}

}  // namespace
}  // namespace fedaqp
