// Tests for the serving subsystem: deficit-weighted fair admission
// (serve::DeficitFairQueue and FederationClient::Options::fair_admission),
// deadline eviction with full refunds, the shared ledger service
// (serve::LedgerService / serve::RemoteLedger) including its idempotent
// retry protocol and mid-charge crash behavior, and the open-loop load
// harness. Runs in the CI ThreadSanitizer job: the two-coordinator
// hammering and the kill-mid-charge tests double as the TSan surface for
// the service's locking.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dp/accountant.h"
#include "exec/federation_client.h"
#include "obs/audit_log.h"
#include "serve/fair_queue.h"
#include "serve/ledger_service.h"
#include "serve/loadgen.h"
#include "workload/datagen.h"

namespace fedaqp {
namespace {

std::unique_ptr<DataProvider> MakeProvider(size_t rows, uint64_t seed) {
  SyntheticConfig cfg;
  cfg.rows = rows;
  cfg.seed = seed;
  cfg.dims = {{"a", 200, DistributionKind::kNormal, 0.5},
              {"b", 100, DistributionKind::kZipf, 1.2}};
  Result<Table> t = GenerateSynthetic(cfg);
  EXPECT_TRUE(t.ok());
  Result<Table> tensor = t->BuildCountTensor({0, 1});
  EXPECT_TRUE(tensor.ok());
  DataProvider::Options popts;
  popts.storage.cluster_capacity = 128;
  popts.storage.layout = ClusterLayout::kShuffled;
  popts.storage.shuffle_seed = seed;
  popts.n_min = 4;
  popts.seed = seed * 3 + 1;
  Result<std::unique_ptr<DataProvider>> p = DataProvider::Create(*tensor, popts);
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

std::vector<std::unique_ptr<DataProvider>> MakeFederation(size_t providers) {
  std::vector<std::unique_ptr<DataProvider>> out;
  for (size_t i = 0; i < providers; ++i) {
    out.push_back(MakeProvider(4000, 901 + 13 * i));
  }
  return out;
}

std::vector<DataProvider*> Ptrs(
    std::vector<std::unique_ptr<DataProvider>>& providers) {
  std::vector<DataProvider*> out;
  for (auto& p : providers) out.push_back(p.get());
  return out;
}

FederationConfig BaseConfig(size_t threads, BatchScheduler scheduler) {
  FederationConfig config;
  config.per_query_budget = {1.0, 1e-3};
  config.sampling_rate = 0.3;
  config.total_xi = 1e6;
  config.total_psi = 1e3;
  config.seed = 626;
  config.num_threads = threads;
  config.scheduler = scheduler;
  return config;
}

RangeQuery WideQuery(int shift = 0) {
  return RangeQueryBuilder(Aggregation::kCount)
      .Where(0, 10 + shift, 170)
      .Build();
}

// ------------------------------------------------------ DWRR fair queue --

// The schedule is a pure function of (push sequence, weights): a
// hand-computed expectation, repeatable across identical rebuilds.
TEST(DeficitFairQueueTest, ScheduleIsPureFunctionOfSequenceAndWeights) {
  auto build = [] {
    serve::DeficitFairQueue q;
    q.SetWeight("a", 1);
    q.SetWeight("b", 2);
    // Interleaved arrival: a1 b2 a3 b4 a5 b6 a7 b8. Ring order is
    // first-queued: a then b. Rotations: a takes 1, b takes 2; repeat.
    q.Push(1, "a");
    q.Push(2, "b");
    q.Push(3, "a");
    q.Push(4, "b");
    q.Push(5, "a");
    q.Push(6, "b");
    q.Push(7, "a");
    q.Push(8, "b");
    return q;
  };
  const std::vector<uint64_t> expected = {1, 2, 4, 3, 6, 8, 5, 7};
  serve::DeficitFairQueue q1 = build();
  EXPECT_EQ(q1.PopBatch(), expected);
  serve::DeficitFairQueue q2 = build();
  EXPECT_EQ(q2.PopBatch(), expected);
  // A `max` cutoff mid-quantum resumes exactly where it stopped: the
  // concatenation of capped batches equals the uncapped schedule.
  serve::DeficitFairQueue q3 = build();
  std::vector<uint64_t> concat;
  while (!q3.empty()) {
    for (uint64_t seq : q3.PopBatch(3)) concat.push_back(seq);
  }
  EXPECT_EQ(concat, expected);
}

// Starvation bound: an analyst of weight w_i waits at most one full
// rotation — sum over competitors' weights — before its head entry pops.
TEST(DeficitFairQueueTest, LightAnalystAdmitsWithinOneRotation) {
  serve::DeficitFairQueue q;
  q.SetWeight("heavy", 8);
  q.SetWeight("light", 1);
  for (uint64_t i = 0; i < 50; ++i) q.Push(i, "heavy");
  q.Push(100, "light");
  // One full heavy quantum (8) may precede light's turn; light's entry
  // must appear within the first 9 pops.
  std::vector<uint64_t> order = q.PopBatch(9);
  EXPECT_NE(std::find(order.begin(), order.end(), 100u), order.end());
}

// -------------------------------------------- fair admission in the client --

std::vector<QuerySpec> InterleavedBurst(size_t n) {
  // Three analysts with weights {1,2,8} submitting round-robin.
  std::vector<QuerySpec> specs;
  for (size_t i = 0; i < n; ++i) {
    QuerySpec spec;
    spec.analyst = "a" + std::to_string(i % 3);
    spec.query = WideQuery(static_cast<int>(i % 7));
    specs.push_back(std::move(spec));
  }
  return specs;
}

// The DWRR admission order, answers, and ledgers are bit-identical
// across pool sizes and both schedulers: fairness is an admission-order
// policy, not a scheduling accident.
TEST(FairAdmissionTest, BitIdenticalAcrossPoolsAndSchedulers) {
  auto run = [](size_t threads, BatchScheduler sched,
                std::vector<uint64_t>* order, std::vector<double>* answers,
                PrivacyBudget* spent) {
    auto providers = MakeFederation(2);
    FederationClient::Options copts;
    copts.protocol = BaseConfig(threads, sched);
    copts.analysts = {{"a0", 1e6, 1e3, 1},
                      {"a1", 1e6, 1e3, 2},
                      {"a2", 1e6, 1e3, 8}};
    copts.fair_admission = true;
    copts.start_paused = true;
    Result<std::unique_ptr<FederationClient>> client =
        FederationClient::Create(Ptrs(providers), copts);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    std::vector<QueryTicket> burst =
        (*client)->SubmitAll(InterleavedBurst(12));
    (*client)->Resume();
    (*client)->WaitIdle();
    for (QueryTicket& t : burst) {
      Result<QueryResponse> resp = t.Wait();
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      answers->push_back(resp->estimate);
    }
    *order = (*client)->admission_order();
    Result<PrivacyBudget> s = (*client)->ledger().Spent("a2");
    ASSERT_TRUE(s.ok());
    *spent = *s;
  };
  std::vector<uint64_t> ref_order;
  std::vector<double> ref_answers;
  PrivacyBudget ref_spent;
  run(1, BatchScheduler::kTaskGraph, &ref_order, &ref_answers, &ref_spent);
  ASSERT_EQ(ref_order.size(), 12u);
  // The heavy analyst (a2, weight 8) leads its rotation: after the first-
  // queued analyst a0 (weight 1) takes one, a1 takes two, a2 drains its
  // whole backlog within its first quantum.
  for (size_t threads : {2u, 8u}) {
    for (BatchScheduler sched :
         {BatchScheduler::kTaskGraph, BatchScheduler::kPhaseBarrier}) {
      std::vector<uint64_t> order;
      std::vector<double> answers;
      PrivacyBudget spent;
      run(threads, sched, &order, &answers, &spent);
      EXPECT_EQ(order, ref_order) << "threads=" << threads;
      EXPECT_EQ(answers, ref_answers) << "threads=" << threads;
      EXPECT_EQ(spent.epsilon, ref_spent.epsilon);
      EXPECT_EQ(spent.delta, ref_spent.delta);
    }
  }
}

// Fairness off (the default) keeps strict FIFO arrival order — the
// pre-serving behavior every existing pin relies on.
TEST(FairAdmissionTest, FifoDefaultPreservesArrivalOrder) {
  auto providers = MakeFederation(2);
  FederationClient::Options copts;
  copts.protocol = BaseConfig(2, BatchScheduler::kTaskGraph);
  copts.analysts = {{"a0", 1e6, 1e3, 1},
                    {"a1", 1e6, 1e3, 2},
                    {"a2", 1e6, 1e3, 8}};
  copts.start_paused = true;
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(Ptrs(providers), copts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  std::vector<QueryTicket> burst = (*client)->SubmitAll(InterleavedBurst(9));
  (*client)->Resume();
  (*client)->WaitIdle();
  for (QueryTicket& t : burst) EXPECT_TRUE(t.Wait().ok());
  std::vector<uint64_t> expected;
  for (const QueryTicket& t : burst) expected.push_back(t.id());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ((*client)->admission_order(), expected);
}

// With fairness on, a weight-8 competitor cannot starve a weight-1
// analyst: the light analyst's first query admits within one rotation of
// the heavy backlog, not after all of it.
TEST(FairAdmissionTest, HeavyBacklogDoesNotStarveLightAnalyst) {
  auto providers = MakeFederation(2);
  FederationClient::Options copts;
  copts.protocol = BaseConfig(2, BatchScheduler::kTaskGraph);
  copts.analysts = {{"heavy", 1e6, 1e3, 8}, {"light", 1e6, 1e3, 1}};
  copts.fair_admission = true;
  copts.start_paused = true;
  // Admit one query per round so the DWRR rotation is visible in the
  // admission order rather than collapsed into one big round.
  copts.max_batch_queries = 1;
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(Ptrs(providers), copts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  std::vector<QuerySpec> specs;
  for (size_t i = 0; i < 20; ++i) {
    QuerySpec spec;
    spec.analyst = "heavy";
    spec.query = WideQuery(static_cast<int>(i % 7));
    specs.push_back(std::move(spec));
  }
  QuerySpec light;
  light.analyst = "light";
  light.query = WideQuery(3);
  specs.push_back(std::move(light));
  std::vector<QueryTicket> burst = (*client)->SubmitAll(std::move(specs));
  const uint64_t light_seq = burst.back().id();
  (*client)->Resume();
  (*client)->WaitIdle();
  for (QueryTicket& t : burst) EXPECT_TRUE(t.Wait().ok());
  std::vector<uint64_t> order = (*client)->admission_order();
  auto it = std::find(order.begin(), order.end(), light_seq);
  ASSERT_NE(it, order.end());
  // Bound: one full rotation = heavy's weight (8) + light's own turn.
  EXPECT_LT(it - order.begin(), 9);
}

// ------------------------------------------------------ deadline eviction --

// Evicted-before-start queries refund in full, resolve to
// kDeadlineExceeded with stats.evicted set, and the audit log still
// replays to the live ledger bit-exactly.
TEST(DeadlineEvictionTest, EvictedQueriesRefundFullyAndAuditReplays) {
  // Bigger providers than the other tests: the flood below must keep one
  // worker busy for many times the eviction deadline.
  std::vector<std::unique_ptr<DataProvider>> providers;
  providers.push_back(MakeProvider(12000, 901));
  providers.push_back(MakeProvider(12000, 914));
  providers.push_back(MakeProvider(12000, 927));
  FederationClient::Options copts;
  copts.protocol = BaseConfig(1, BatchScheduler::kTaskGraph);
  copts.analysts = {{"alice", 1e6, 1e3}};
  copts.evict_expired = true;
  copts.start_paused = true;
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(Ptrs(providers), copts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  // One single-threaded round: a flood of deadline-less high-priority
  // queries monopolizes the worker (the ready queue drains high before
  // low), so the low-priority tail's first stage claims happen only
  // after the flood — far past the tail's short deadlines. The watcher
  // must evict the (admitted, charged) tail before it starts.
  std::vector<QuerySpec> specs;
  for (size_t i = 0; i < 200; ++i) {
    QuerySpec spec;
    spec.analyst = "alice";
    spec.query = WideQuery(static_cast<int>(i % 7));
    spec.priority = QueryPriority::kHigh;
    specs.push_back(std::move(spec));
  }
  for (size_t i = 0; i < 10; ++i) {
    QuerySpec spec;
    spec.analyst = "alice";
    spec.query = WideQuery(static_cast<int>(i % 7));
    spec.priority = QueryPriority::kLow;
    spec.deadline_seconds = 0.003;
    specs.push_back(std::move(spec));
  }
  std::vector<QueryTicket> burst = (*client)->SubmitAll(std::move(specs));
  (*client)->Resume();
  (*client)->WaitIdle();
  size_t evicted = 0;
  for (QueryTicket& t : burst) {
    Result<QueryResponse> resp = t.Wait();
    const TicketStats stats = t.Stats();
    if (stats.evicted) {
      ++evicted;
      EXPECT_FALSE(resp.ok());
      EXPECT_EQ(resp.status().code(), StatusCode::kDeadlineExceeded);
      // Full refund: everything charged came back.
      EXPECT_EQ(stats.refunded.epsilon, copts.protocol.per_query_budget.epsilon);
      EXPECT_EQ(stats.refunded.delta, copts.protocol.per_query_budget.delta);
    }
  }
  // The 3 ms deadline is far shorter than 200 high-priority queries on
  // one thread; at least part of the low tail must have been evicted.
  EXPECT_GT(evicted, 0u);
  // Replay the audit log (charges + eviction refunds) into a fresh
  // ledger: spent must match the live ledger bit-exactly.
  AnalystLedger replayed;
  ASSERT_TRUE((*client)->audit_log().Replay(&replayed).ok());
  Result<PrivacyBudget> live = (*client)->ledger().Spent("alice");
  Result<PrivacyBudget> rep = replayed.Spent("alice");
  ASSERT_TRUE(live.ok() && rep.ok());
  EXPECT_EQ(live->epsilon, rep->epsilon);
  EXPECT_EQ(live->delta, rep->delta);
}

// --------------------------------------------------- shared ledger service --

TEST(LedgerServiceTest, RegistrationIsJoinIdempotent) {
  Result<std::unique_ptr<serve::LedgerService>> service =
      serve::LedgerService::Start({});
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  Result<std::shared_ptr<serve::RemoteLedger>> remote =
      serve::RemoteLedger::Connect("127.0.0.1", (*service)->port(), 7);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_TRUE((*remote)->Register("alice", 10.0, 1.0).ok());
  // Identical grant: OK (a second coordinator joining the fleet).
  EXPECT_TRUE((*remote)->Register("alice", 10.0, 1.0).ok());
  // Conflicting grant: refused.
  Status conflict = (*remote)->Register("alice", 20.0, 1.0);
  EXPECT_EQ(conflict.code(), StatusCode::kInvalidArgument);
  Result<bool> knows = (*remote)->Knows("alice");
  ASSERT_TRUE(knows.ok());
  EXPECT_TRUE(*knows);
  Result<bool> unknown = (*remote)->Knows("bob");
  ASSERT_TRUE(unknown.ok());
  EXPECT_FALSE(*unknown);
}

// Two coordinators hammering one grant concurrently never over-spend it:
// the service serializes dedupe + apply, so exactly K of the combined
// charges land. The audit log's merged order replays bit-exactly.
TEST(LedgerServiceTest, TwoCoordinatorsNeverOverspendSharedGrant) {
  Result<std::unique_ptr<serve::LedgerService>> service =
      serve::LedgerService::Start({});
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const PrivacyBudget cost{1.0, 1e-3};
  constexpr int kAffordable = 40;
  ASSERT_TRUE(
      (*service)
          ->Register("alice", kAffordable * cost.epsilon,
                     kAffordable * cost.delta)
          .ok());
  std::atomic<int> ok_charges{0};
  auto hammer = [&](uint32_t coordinator) {
    Result<std::shared_ptr<serve::RemoteLedger>> remote =
        serve::RemoteLedger::Connect("127.0.0.1", (*service)->port(),
                                     coordinator);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    for (uint64_t seq = 1; seq <= kAffordable; ++seq) {
      if ((*remote)->Charge("alice", cost, seq).ok()) {
        ok_charges.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::thread c1(hammer, 1);
  std::thread c2(hammer, 2);
  c1.join();
  c2.join();
  EXPECT_EQ(ok_charges.load(), kAffordable);
  Result<PrivacyBudget> spent = (*service)->ledger().Spent("alice");
  ASSERT_TRUE(spent.ok());
  EXPECT_DOUBLE_EQ(spent->epsilon, kAffordable * cost.epsilon);
  AnalystLedger replayed;
  ASSERT_TRUE((*service)->audit_log().Replay(&replayed).ok());
  Result<PrivacyBudget> rep = replayed.Spent("alice");
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(spent->epsilon, rep->epsilon);
  EXPECT_EQ(spent->delta, rep->delta);
}

// Re-sending a (coordinator, seq) mutation — a client retrying after a
// reconnect, unsure whether its charge landed — applies at most once.
TEST(LedgerServiceTest, RetriedChargeIsIdempotent) {
  Result<std::unique_ptr<serve::LedgerService>> service =
      serve::LedgerService::Start({});
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE((*service)->Register("alice", 100.0, 1.0).ok());
  Result<std::shared_ptr<serve::RemoteLedger>> remote =
      serve::RemoteLedger::Connect("127.0.0.1", (*service)->port(), 3);
  ASSERT_TRUE(remote.ok());
  const PrivacyBudget cost{2.0, 1e-3};
  EXPECT_TRUE((*remote)->Charge("alice", cost, 11).ok());
  // Same (coordinator, seq): the recorded outcome, no second apply.
  EXPECT_TRUE((*remote)->Charge("alice", cost, 11).ok());
  // Same seq after an explicit reconnect: still deduped.
  ASSERT_TRUE((*remote)->Reconnect().ok());
  EXPECT_TRUE((*remote)->Charge("alice", cost, 11).ok());
  Result<PrivacyBudget> spent = (*service)->ledger().Spent("alice");
  ASSERT_TRUE(spent.ok());
  EXPECT_DOUBLE_EQ(spent->epsilon, 2.0);
}

// Two FederationClients (separate federations, one shared service) spend
// one grant: their combined successful queries never exceed it.
TEST(LedgerServiceTest, TwoClientsShareOneBudget) {
  Result<std::unique_ptr<serve::LedgerService>> service =
      serve::LedgerService::Start({});
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  // Room for exactly 5 unit-epsilon queries across both coordinators.
  ASSERT_TRUE((*service)->Register("alice", 5.0, 1.0).ok());
  auto run_client = [&](uint32_t coordinator, size_t queries, size_t* ok) {
    auto providers = MakeFederation(2);
    Result<std::shared_ptr<serve::RemoteLedger>> remote =
        serve::RemoteLedger::Connect("127.0.0.1", (*service)->port(),
                                     coordinator);
    ASSERT_TRUE(remote.ok());
    FederationClient::Options copts;
    copts.protocol = BaseConfig(2, BatchScheduler::kTaskGraph);
    copts.shared_ledger = *remote;
    Result<std::unique_ptr<FederationClient>> client =
        FederationClient::Create(Ptrs(providers), copts);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    for (size_t i = 0; i < queries; ++i) {
      QuerySpec spec;
      spec.analyst = "alice";
      spec.query = WideQuery(static_cast<int>(i % 7));
      if ((*client)->Submit(spec).Wait().ok()) ++*ok;
    }
  };
  size_t ok1 = 0, ok2 = 0;
  std::thread t1(run_client, 1, 4, &ok1);
  std::thread t2(run_client, 2, 4, &ok2);
  t1.join();
  t2.join();
  EXPECT_EQ(ok1 + ok2, 5u);
  Result<PrivacyBudget> spent = (*service)->ledger().Spent("alice");
  ASSERT_TRUE(spent.ok());
  EXPECT_DOUBLE_EQ(spent->epsilon, 5.0);
}

// Kill the service while clients are mid-stream: affected admissions
// fail with a transport status (no hang, no local charge), and an
// explicit Reconnect against a revived service heals the client.
TEST(LedgerServiceTest, ServiceDeathFailsAdmissionsWithoutHangingOrLeaking) {
  Result<std::unique_ptr<serve::LedgerService>> service =
      serve::LedgerService::Start({});
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const uint16_t port = (*service)->port();
  ASSERT_TRUE((*service)->Register("alice", 1e6, 1e3).ok());
  auto providers = MakeFederation(2);
  Result<std::shared_ptr<serve::RemoteLedger>> remote =
      serve::RemoteLedger::Connect("127.0.0.1", port, 9);
  ASSERT_TRUE(remote.ok());
  FederationClient::Options copts;
  copts.protocol = BaseConfig(2, BatchScheduler::kTaskGraph);
  copts.shared_ledger = *remote;
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(Ptrs(providers), copts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  // Healthy first query.
  QuerySpec spec;
  spec.analyst = "alice";
  spec.query = WideQuery(0);
  ASSERT_TRUE((*client)->Submit(spec).Wait().ok());
  // Kill the service, then submit a stream: every ticket must resolve
  // (non-hanging) with a non-OK status, and nothing may charge locally.
  (*service)->Stop();
  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 6; ++i) {
    QuerySpec s2;
    s2.analyst = "alice";
    s2.query = WideQuery(i % 7);
    tickets.push_back((*client)->Submit(s2));
  }
  for (QueryTicket& t : tickets) {
    Result<QueryResponse> resp = t.Wait();
    EXPECT_FALSE(resp.ok());
  }
  EXPECT_TRUE((*remote)->broken());
  // The client's local ledger is not in play (shared backend): nothing
  // leaked into it.
  EXPECT_FALSE((*client)->ledger().Knows("alice"));
  // Revive on the same port and heal: queries flow again.
  serve::LedgerService::Options ropts;
  ropts.port = port;
  Result<std::unique_ptr<serve::LedgerService>> revived =
      serve::LedgerService::Start(ropts);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  ASSERT_TRUE((*revived)->Register("alice", 1e6, 1e3).ok());
  ASSERT_TRUE((*remote)->Reconnect().ok());
  EXPECT_FALSE((*remote)->broken());
  QuerySpec s3;
  s3.analyst = "alice";
  s3.query = WideQuery(2);
  EXPECT_TRUE((*client)->Submit(s3).Wait().ok());
}

// ------------------------------------------------------- open-loop harness --

// The harness offers its configured load without closed-loop throttling
// and classifies every outcome; totals reconcile.
TEST(LoadGeneratorTest, OffersLoadAndReconcilesOutcomes) {
  auto providers = MakeFederation(2);
  FederationClient::Options copts;
  copts.protocol = BaseConfig(2, BatchScheduler::kTaskGraph);
  copts.analysts = {{"a0", 1e6, 1e3, 1}, {"a1", 1e6, 1e3, 2}};
  copts.fair_admission = true;
  copts.enable_cache = true;
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(Ptrs(providers), copts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  serve::LoadGenerator gen(client->get(),
                           {WideQuery(0), WideQuery(2), WideQuery(5)});
  serve::LoadOptions lopts;
  lopts.offered_qps = 200.0;
  lopts.duration_seconds = 0.25;
  lopts.num_analysts = 2;
  lopts.seed = 9;
  serve::LoadMix mix;
  mix.high_fraction = 0.3;
  mix.low_fraction = 0.3;
  mix.reuse_fraction = 0.5;
  serve::LoadReport rep = gen.Run(lopts, mix);
  EXPECT_GT(rep.submitted, 0u);
  EXPECT_EQ(rep.submitted, rep.ok + rep.refused + rep.evicted +
                               rep.budget_refused + rep.failed);
  uint64_t class_sum = 0;
  for (const serve::ClassReport& c : rep.per_class) class_sum += c.submitted;
  EXPECT_EQ(class_sum, rep.submitted);
  EXPECT_EQ(rep.failed, 0u);
  EXPECT_GT(rep.cache_served, 0u);
  EXPECT_GT(rep.achieved_qps, 0.0);
  for (const serve::ClassReport& c : rep.per_class) {
    if (c.ok > 0) {
      EXPECT_GT(c.p50_seconds, 0.0);
      EXPECT_GE(c.p99_seconds, c.p50_seconds);
      EXPECT_GE(c.p999_seconds, c.p99_seconds);
    }
  }
}

}  // namespace
}  // namespace fedaqp
