// Property suite for the sharded intra-provider scan engine: for random
// tables and queries, across all three ClusterLayouts, every sharded
// result — exact evaluation, covering-set scans, metadata covers, DP
// estimates, work stats, and the EM sample composition they encode — must
// be bit-identical to the shard_count=1 run, for shard counts that do and
// do not divide the cluster count evenly, with and without a pool.

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/federation.h"
#include "exec/thread_pool.h"
#include "federation/provider.h"
#include "metadata/metadata_store.h"
#include "storage/cluster_store.h"
#include "storage/sharded_scan_executor.h"
#include "workload/datagen.h"

namespace fedaqp {
namespace {

// Shard counts the ISSUE pins: 1 (degenerate), divisors and non-divisors
// of typical cluster counts, and more shards than some stores have
// clusters.
const size_t kShardCounts[] = {1, 2, 3, 7, 16};

const ClusterLayout kLayouts[] = {ClusterLayout::kSequential,
                                  ClusterLayout::kSortedByFirstDim,
                                  ClusterLayout::kShuffled};

Table RandomTable(size_t rows, uint64_t seed) {
  SyntheticConfig cfg;
  cfg.rows = rows;
  cfg.seed = seed;
  cfg.dims = {{"a", 120, DistributionKind::kNormal, 0.5},
              {"b", 60, DistributionKind::kZipf, 1.1},
              {"c", 30, DistributionKind::kUniform, 0.0}};
  Result<Table> t = GenerateSynthetic(cfg);
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

RangeQuery RandomQuery(Rng* rng) {
  Aggregation agg = rng->Bernoulli(0.5) ? Aggregation::kCount : Aggregation::kSum;
  RangeQueryBuilder builder(agg);
  Value lo0 = rng->UniformInt(0, 70), hi0 = rng->UniformInt(lo0, 119);
  builder.Where(0, lo0, hi0);
  if (rng->Bernoulli(0.5)) {
    Value lo1 = rng->UniformInt(0, 30), hi1 = rng->UniformInt(lo1, 59);
    builder.Where(1, lo1, hi1);
  }
  return builder.Build();
}

// ----------------------------------------------------- Partition geometry --

TEST(ShardPartitionTest, CoversDomainContiguouslyAndBalanced) {
  for (size_t n : {0u, 1u, 5u, 37u, 100u}) {
    for (size_t shards : kShardCounts) {
      std::vector<ShardRange> ranges =
          ShardedScanExecutor::Partition(n, shards);
      size_t expected = n < shards ? n : shards;
      ASSERT_EQ(ranges.size(), n == 0 ? 0 : expected);
      size_t next = 0, min_size = n, max_size = 0;
      for (const ShardRange& r : ranges) {
        EXPECT_EQ(r.begin, next);  // contiguous, ascending, gap-free
        EXPECT_GT(r.end, r.begin);
        next = r.end;
        min_size = r.size() < min_size ? r.size() : min_size;
        max_size = r.size() > max_size ? r.size() : max_size;
      }
      EXPECT_EQ(next, n);
      if (!ranges.empty()) EXPECT_LE(max_size - min_size, 1u);
    }
  }
}

TEST(ShardPartitionTest, ShardSeedsAreKeyedAndStable) {
  // Stable: a pure function of the triple.
  EXPECT_EQ(ShardedScanExecutor::ShardSeed(1, 2, 3),
            ShardedScanExecutor::ShardSeed(1, 2, 3));
  // Distinct across each coordinate of (provider seed, query id, shard id).
  std::set<uint64_t> seeds;
  for (uint64_t p = 0; p < 8; ++p) {
    for (uint64_t q = 0; q < 8; ++q) {
      for (uint64_t s = 0; s < 8; ++s) {
        seeds.insert(ShardedScanExecutor::ShardSeed(p, q, s));
      }
    }
  }
  EXPECT_EQ(seeds.size(), 8u * 8u * 8u);
}

// ----------------------------------------------- Store-level bit-identity --

// One store per layout with a cluster count the shard counts do not divide
// evenly (1700 rows / capacity 96 -> 18 clusters).
TEST(ShardedStoreProperty, ExactScansIdenticalForEveryShardCount) {
  ThreadPool pool(3);
  for (ClusterLayout layout : kLayouts) {
    Table t = RandomTable(1700, 0x51ed + static_cast<uint64_t>(layout));
    ClusterStoreOptions opts;
    opts.cluster_capacity = 96;
    opts.layout = layout;
    opts.shuffle_seed = 99;
    Result<ClusterStore> store = ClusterStore::Build(t, opts);
    ASSERT_TRUE(store.ok());
    MetadataStore metas = MetadataStore::Build(*store);

    Rng rng(0xabc0 + static_cast<uint64_t>(layout));
    for (int trial = 0; trial < 6; ++trial) {
      RangeQuery q = RandomQuery(&rng);
      ShardScanStats base_stats;
      const int64_t base_exact = store->EvaluateExact(q, nullptr, &base_stats);
      const CoverInfo base_cover = metas.Cover(q);
      Result<ScanResult> base_scan =
          store->ScanClusters(q, base_cover.cluster_ids);
      ASSERT_TRUE(base_scan.ok());

      for (size_t shards : kShardCounts) {
        ShardedScanExecutor exec(shards, &pool);
        ShardScanStats stats;
        EXPECT_EQ(store->EvaluateExact(q, &exec, &stats), base_exact)
            << "layout=" << static_cast<int>(layout) << " shards=" << shards;
        // Work counters are shard-invariant (total work is total work).
        EXPECT_EQ(stats.clusters_scanned, base_stats.clusters_scanned);
        EXPECT_EQ(stats.rows_scanned, base_stats.rows_scanned);

        CoverInfo cover = metas.Cover(q, &exec);
        ASSERT_EQ(cover.cluster_ids, base_cover.cluster_ids);
        ASSERT_EQ(cover.proportions.size(), base_cover.proportions.size());
        for (size_t i = 0; i < cover.proportions.size(); ++i) {
          // Bitwise: the same double computed for the same cluster.
          EXPECT_EQ(cover.proportions[i], base_cover.proportions[i]);
        }

        Result<ScanResult> scan =
            store->ScanClusters(q, cover.cluster_ids, &exec);
        ASSERT_TRUE(scan.ok());
        EXPECT_EQ(scan->count, base_scan->count);
        EXPECT_EQ(scan->sum, base_scan->sum);
        EXPECT_EQ(scan->sum_squares, base_scan->sum_squares);
      }
    }
  }
}

// -------------------------------------------- Provider-level bit-identity --

std::unique_ptr<DataProvider> MakeShardedProvider(ClusterLayout layout,
                                                  size_t num_scan_shards,
                                                  uint64_t seed) {
  Table t = RandomTable(2200, seed);
  Result<Table> tensor = t.BuildCountTensor({0, 1});
  EXPECT_TRUE(tensor.ok());
  DataProvider::Options popts;
  popts.storage.cluster_capacity = 80;
  popts.storage.layout = layout;
  popts.storage.shuffle_seed = seed ^ 0x5;
  popts.storage.num_scan_shards = num_scan_shards;
  popts.n_min = 4;
  popts.seed = seed * 7 + 3;
  Result<std::unique_ptr<DataProvider>> p = DataProvider::Create(*tensor, popts);
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

// The full local protocol — cover, DP summary, EM sample, scan, estimate,
// smooth sensitivity, noise — must not depend on the shard count: estimate
// bits encode the sample composition, so equality here pins that the EM
// sampler saw an identical cover (hence identical pps weights) and the
// estimator consumed identical per-cluster scan results.
TEST(ShardedProviderProperty, LocalEstimatesIdenticalForEveryShardCount) {
  ThreadPool pool(3);
  for (ClusterLayout layout : kLayouts) {
    const uint64_t seed = 0x9d0 + static_cast<uint64_t>(layout);

    struct Baseline {
      double summary_avg = 0.0, summary_nq = 0.0;
      double estimate = 0.0, variance = 0.0, sensitivity = 0.0;
      size_t clusters = 0, rows = 0;
      double exact_estimate = 0.0;
    };
    Baseline base;
    bool have_base = false;

    for (size_t shards : kShardCounts) {
      std::unique_ptr<DataProvider> p =
          MakeShardedProvider(layout, shards, seed);
      ShardedScanExecutor exec(shards, &pool);
      RangeQuery q = RangeQueryBuilder(Aggregation::kSum)
                         .Where(0, 10, 100)
                         .Where(1, 5, 50)
                         .Build();
      ProviderWorkStats cover_work;
      CoverInfo cover = p->Cover(q, &cover_work, &exec);
      ASSERT_GE(cover.NumClusters(), 4u);

      // Fresh, shard-count-independent session streams, as the endpoint
      // layer derives them.
      Rng summary_rng(MixSeeds(p->options().seed, 1001));
      Result<ProviderSummary> summary =
          p->PublishSummary(q, cover, 0.3, &summary_rng);
      ASSERT_TRUE(summary.ok());

      Rng approx_rng(MixSeeds(p->options().seed, 2002));
      Result<LocalEstimate> est = p->Approximate(
          q, cover, /*sample_size=*/6, /*eps_sampling=*/0.2,
          /*eps_estimate=*/0.5, /*delta=*/1e-3, /*add_noise=*/true,
          &approx_rng, &exec);
      ASSERT_TRUE(est.ok());

      Rng exact_rng(MixSeeds(p->options().seed, 3003));
      Result<LocalEstimate> exact =
          p->ExactAnswer(q, cover, 0.5, /*add_noise=*/true, &exact_rng, &exec);
      ASSERT_TRUE(exact.ok());

      if (!have_base) {
        base = Baseline{summary->noisy_avg_r, summary->noisy_n_q,
                        est->estimate,        est->variance,
                        est->sensitivity,     est->work.clusters_scanned,
                        est->work.rows_scanned, exact->estimate};
        have_base = true;
        continue;
      }
      EXPECT_EQ(summary->noisy_avg_r, base.summary_avg) << "shards=" << shards;
      EXPECT_EQ(summary->noisy_n_q, base.summary_nq) << "shards=" << shards;
      EXPECT_EQ(est->estimate, base.estimate) << "shards=" << shards;
      EXPECT_EQ(est->variance, base.variance) << "shards=" << shards;
      EXPECT_EQ(est->sensitivity, base.sensitivity) << "shards=" << shards;
      // Sample composition proxy: the same distinct clusters were scanned.
      EXPECT_EQ(est->work.clusters_scanned, base.clusters)
          << "shards=" << shards;
      EXPECT_EQ(est->work.rows_scanned, base.rows) << "shards=" << shards;
      EXPECT_EQ(exact->estimate, base.exact_estimate) << "shards=" << shards;
    }
  }
}

// --------------------------------------- Federation-level (config-driven) --

// The num_scan_shards knob threaded through FederationConfig must leave
// end-to-end answers bit-identical while the orchestration pool is live.
TEST(ShardedFederationProperty, EndToEndAnswersIdenticalForEveryShardCount) {
  SyntheticConfig cfg;
  cfg.rows = 6000;
  cfg.seed = 77;
  cfg.dims = {{"a", 80, DistributionKind::kNormal, 0.4},
              {"b", 40, DistributionKind::kZipf, 1.2}};

  std::vector<double> estimates;
  std::vector<double> exacts;
  std::vector<size_t> rows_scanned;
  for (size_t shards : kShardCounts) {
    Result<std::vector<Table>> parts = GenerateFederatedTensors(cfg, {0, 1}, 3);
    ASSERT_TRUE(parts.ok());
    FederationOptions fopts;
    fopts.cluster_capacity = 64;
    fopts.layout = ClusterLayout::kShuffled;
    fopts.seed = 4321;
    fopts.protocol.sampling_rate = 0.3;
    fopts.protocol.total_xi = 1e6;
    fopts.protocol.total_psi = 1e3;
    fopts.protocol.num_threads = 4;
    fopts.protocol.num_scan_shards = shards;
    Result<std::unique_ptr<Federation>> fed =
        Federation::Open(std::move(parts).value(), fopts);
    ASSERT_TRUE(fed.ok());
    RangeQuery q = RangeQueryBuilder(Aggregation::kCount)
                       .Where(0, 10, 70)
                       .Where(1, 0, 30)
                       .Build();
    Result<QueryResponse> resp = (*fed)->Query(q);
    ASSERT_TRUE(resp.ok());
    estimates.push_back(resp->estimate);
    rows_scanned.push_back(resp->breakdown.rows_scanned);
    Result<QueryResponse> exact = (*fed)->QueryExact(q);
    ASSERT_TRUE(exact.ok());
    exacts.push_back(exact->estimate);
  }
  for (size_t i = 1; i < estimates.size(); ++i) {
    EXPECT_EQ(estimates[i], estimates[0]) << "shards=" << kShardCounts[i];
    EXPECT_EQ(exacts[i], exacts[0]) << "shards=" << kShardCounts[i];
    EXPECT_EQ(rows_scanned[i], rows_scanned[0]) << "shards=" << kShardCounts[i];
  }
}

}  // namespace
}  // namespace fedaqp
