// Edge-case coverage for the orchestrated protocol: degenerate
// federations, aggregation bounds, message accounting and response
// invariants.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/math.h"
#include "federation/orchestrator.h"
#include "workload/datagen.h"

namespace fedaqp {
namespace {

std::unique_ptr<DataProvider> MakeProvider(size_t rows, uint64_t seed,
                                           size_t capacity = 128,
                                           size_t n_min = 4) {
  // Large domains so the tensor does not saturate: the cell count (and
  // with it N^Q) keeps growing with the row count, which the
  // heterogeneous-size test below relies on.
  SyntheticConfig cfg;
  cfg.rows = rows;
  cfg.seed = seed;
  cfg.dims = {{"a", 200, DistributionKind::kNormal, 0.5},
              {"b", 100, DistributionKind::kZipf, 1.2}};
  Result<Table> t = GenerateSynthetic(cfg);
  EXPECT_TRUE(t.ok());
  Result<Table> tensor = t->BuildCountTensor({0, 1});
  EXPECT_TRUE(tensor.ok());
  DataProvider::Options popts;
  popts.storage.cluster_capacity = capacity;
  popts.storage.layout = ClusterLayout::kShuffled;
  popts.storage.shuffle_seed = seed;
  popts.n_min = n_min;
  popts.seed = seed * 3 + 1;
  Result<std::unique_ptr<DataProvider>> p =
      DataProvider::Create(*tensor, popts);
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

FederationConfig BaseConfig() {
  FederationConfig config;
  config.per_query_budget = {1.0, 1e-3};
  config.sampling_rate = 0.3;
  config.total_xi = 1e6;
  config.total_psi = 1e3;
  return config;
}

TEST(OrchestratorEdgeTest, SingleProviderFederationWorks) {
  std::unique_ptr<DataProvider> p = MakeProvider(8000, 11);
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::Create({p.get()}, BaseConfig());
  ASSERT_TRUE(orch.ok());
  RangeQuery q = RangeQueryBuilder(Aggregation::kSum).Where(0, 20, 180).Build();
  Result<QueryResponse> exact = orch->ExecuteExact(q);
  Result<QueryResponse> resp = orch->Execute(q);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(resp.ok());
  EXPECT_GT(exact->estimate, 0.0);
  EXPECT_LT(RelativeError(exact->estimate, resp->estimate), 1.5);
  EXPECT_EQ(resp->allocation.size(), 1u);
}

TEST(OrchestratorEdgeTest, TinyProviderAlwaysTakesExactPath) {
  // A provider with fewer clusters than N_min never approximates.
  std::unique_ptr<DataProvider> tiny = MakeProvider(200, 13, 128, 50);
  ASSERT_LT(tiny->store().num_clusters(), 50u);
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::Create({tiny.get()}, BaseConfig());
  ASSERT_TRUE(orch.ok());
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount).Where(0, 0, 199).Build();
  Result<QueryResponse> resp = orch->Execute(q);
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->approximated);
}

TEST(OrchestratorEdgeTest, HeterogeneousProviderSizesAllowed) {
  // Same schema and capacity, wildly different row counts: allowed, and
  // the big provider should receive the larger allocation on average.
  std::unique_ptr<DataProvider> small = MakeProvider(3000, 17);
  std::unique_ptr<DataProvider> big = MakeProvider(30000, 19);
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::Create({small.get(), big.get()}, BaseConfig());
  ASSERT_TRUE(orch.ok());
  RangeQuery q = RangeQueryBuilder(Aggregation::kSum).Where(0, 0, 199).Build();
  size_t small_total = 0, big_total = 0;
  for (int rep = 0; rep < 20; ++rep) {
    Result<QueryResponse> resp = orch->Execute(q);
    ASSERT_TRUE(resp.ok());
    small_total += resp->allocation[0];
    big_total += resp->allocation[1];
  }
  EXPECT_GT(big_total, small_total);
}

TEST(OrchestratorEdgeTest, EmptyRangeListMatchesWholeTable) {
  std::unique_ptr<DataProvider> p = MakeProvider(5000, 23);
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::Create({p.get()}, BaseConfig());
  ASSERT_TRUE(orch.ok());
  RangeQuery q(Aggregation::kSum, {});
  Result<QueryResponse> exact = orch->ExecuteExact(q);
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(exact->estimate, 5000.0);  // total individuals
}

TEST(OrchestratorEdgeTest, StderrReportedInDpMode) {
  std::unique_ptr<DataProvider> p = MakeProvider(20000, 29);
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::Create({p.get()}, BaseConfig());
  ASSERT_TRUE(orch.ok());
  RangeQuery q = RangeQueryBuilder(Aggregation::kSum).Where(0, 20, 180).Build();
  Result<QueryResponse> resp = orch->Execute(q);
  ASSERT_TRUE(resp.ok());
  EXPECT_GT(resp->stderr_estimate, 0.0);
  // The stderr should be a plausible scale for the deviation: over many
  // runs, |error| < 6 * stderr nearly always.
  Result<QueryResponse> exact = orch->ExecuteExact(q);
  ASSERT_TRUE(exact.ok());
  int within = 0, total = 0;
  for (int rep = 0; rep < 25; ++rep) {
    Result<QueryResponse> r = orch->Execute(q);
    ASSERT_TRUE(r.ok());
    if (std::abs(r->estimate - exact->estimate) <= 6.0 * r->stderr_estimate) {
      ++within;
    }
    ++total;
  }
  EXPECT_GE(within * 10, total * 7);  // >= 70%
}

TEST(OrchestratorEdgeTest, SmcModeReportsNoStderr) {
  std::unique_ptr<DataProvider> p = MakeProvider(20000, 31);
  FederationConfig config = BaseConfig();
  config.mode = ReleaseMode::kSmc;
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::Create({p.get()}, config);
  ASSERT_TRUE(orch.ok());
  RangeQuery q = RangeQueryBuilder(Aggregation::kSum).Where(0, 20, 180).Build();
  Result<QueryResponse> resp = orch->Execute(q);
  ASSERT_TRUE(resp.ok());
  EXPECT_DOUBLE_EQ(resp->stderr_estimate, 0.0);
}

TEST(OrchestratorEdgeTest, MessageCountMatchesProtocolRounds) {
  std::unique_ptr<DataProvider> a = MakeProvider(20000, 37);
  std::unique_ptr<DataProvider> b = MakeProvider(20000, 41);
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::Create({a.get(), b.get()}, BaseConfig());
  ASSERT_TRUE(orch.ok());
  RangeQuery q = RangeQueryBuilder(Aggregation::kSum).Where(0, 20, 180).Build();
  Result<QueryResponse> resp = orch->Execute(q);
  ASSERT_TRUE(resp.ok());
  // DP mode charges the real RPC exchange: 8 rounds of 2 messages each
  // (cover request/reply, summary request/reply, estimate request/reply,
  // end-query request/ack).
  EXPECT_EQ(resp->breakdown.network_messages, 16u);
  Result<QueryResponse> exact = orch->ExecuteExact(q);
  ASSERT_TRUE(exact.ok());
  // Exact: scan request broadcast + framed replies.
  EXPECT_EQ(exact->breakdown.network_messages, 4u);
}

TEST(OrchestratorEdgeTest, SumSquaresQueriesRunEndToEnd) {
  std::unique_ptr<DataProvider> p = MakeProvider(20000, 43);
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::Create({p.get()}, BaseConfig());
  ASSERT_TRUE(orch.ok());
  RangeQuery q =
      RangeQueryBuilder(Aggregation::kSumSquares).Where(0, 0, 199).Build();
  Result<QueryResponse> exact = orch->ExecuteExact(q);
  Result<QueryResponse> resp = orch->Execute(q);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(resp.ok());
  EXPECT_GT(exact->estimate, 0.0);
  // The default measure_cap makes the noise conservative; just check the
  // protocol completes and produces a finite answer.
  EXPECT_TRUE(std::isfinite(resp->estimate));
}

TEST(OrchestratorEdgeTest, AllocationSumMatchesPlanTotal) {
  std::unique_ptr<DataProvider> a = MakeProvider(15000, 47);
  std::unique_ptr<DataProvider> b = MakeProvider(15000, 53);
  std::unique_ptr<DataProvider> c = MakeProvider(15000, 59);
  Result<QueryOrchestrator> orch = QueryOrchestrator::Create(
      {a.get(), b.get(), c.get()}, BaseConfig());
  ASSERT_TRUE(orch.ok());
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount).Where(0, 0, 199).Build();
  Result<QueryResponse> resp = orch->Execute(q);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->allocation.size(), 3u);
  size_t total = 0;
  for (size_t s : resp->allocation) total += s;
  EXPECT_GT(total, 0u);
}

TEST(OrchestratorEdgeTest, ResponsesAreDeterministicGivenSeeds) {
  // Two identically-seeded federations produce identical responses.
  auto build = [] {
    std::unique_ptr<DataProvider> p = MakeProvider(10000, 61);
    FederationConfig config;
    config.per_query_budget = {1.0, 1e-3};
    config.sampling_rate = 0.3;
    config.total_xi = 1e6;
    config.total_psi = 1e3;
    config.seed = 99;
    return std::make_pair(std::move(p), config);
  };
  auto [p1, c1] = build();
  auto [p2, c2] = build();
  Result<QueryOrchestrator> o1 = QueryOrchestrator::Create({p1.get()}, c1);
  Result<QueryOrchestrator> o2 = QueryOrchestrator::Create({p2.get()}, c2);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  RangeQuery q = RangeQueryBuilder(Aggregation::kSum).Where(0, 20, 180).Build();
  for (int rep = 0; rep < 3; ++rep) {
    Result<QueryResponse> r1 = o1->Execute(q);
    Result<QueryResponse> r2 = o2->Execute(q);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_DOUBLE_EQ(r1->estimate, r2->estimate);
  }
}

}  // namespace
}  // namespace fedaqp
