// Tests for composition calculus and runtime budget accounting
// (Theorems 3.1/3.2, Sec. 5.4, Sec. 6.6).

#include <cmath>

#include <gtest/gtest.h>

#include "dp/accountant.h"
#include "dp/budget.h"
#include "dp/composition.h"

namespace fedaqp {
namespace {

// ---------------------------------------------------------------- Budget --

TEST(BudgetTest, ValidateRejectsBadValues) {
  EXPECT_TRUE((PrivacyBudget{1.0, 1e-3}).Validate().ok());
  EXPECT_TRUE((PrivacyBudget{0.5, 0.0}).Validate().ok());
  EXPECT_FALSE((PrivacyBudget{0.0, 1e-3}).Validate().ok());
  EXPECT_FALSE((PrivacyBudget{1.0, 1.0}).Validate().ok());
  EXPECT_FALSE((PrivacyBudget{1.0, -0.1}).Validate().ok());
}

TEST(BudgetTest, AdditionIsComponentWise) {
  PrivacyBudget a{0.3, 1e-4};
  PrivacyBudget b{0.5, 2e-4};
  PrivacyBudget c = a + b;
  EXPECT_DOUBLE_EQ(c.epsilon, 0.8);
  EXPECT_DOUBLE_EQ(c.delta, 3e-4);
}

TEST(BudgetSplitTest, DefaultsMatchPaperEvaluation) {
  BudgetSplit split;
  EXPECT_TRUE(split.Validate().ok());
  EXPECT_DOUBLE_EQ(split.hp_allocation, 0.1);
  EXPECT_DOUBLE_EQ(split.hp_sampling, 0.1);
  EXPECT_DOUBLE_EQ(split.hp_estimate, 0.8);
}

TEST(BudgetSplitTest, ValidateEnforcesSimplex) {
  BudgetSplit bad;
  bad.hp_allocation = 0.5;
  bad.hp_sampling = 0.5;
  bad.hp_estimate = 0.5;
  EXPECT_FALSE(bad.Validate().ok());
  BudgetSplit zero;
  zero.hp_allocation = 0.0;
  zero.hp_sampling = 0.2;
  zero.hp_estimate = 0.8;
  EXPECT_FALSE(zero.Validate().ok());
}

// ----------------------------------------------------------- Composition --

TEST(CompositionTest, SequentialSums) {
  PrivacyBudget total = SequentialComposition(
      {{0.1, 1e-4}, {0.2, 2e-4}, {0.3, 3e-4}});
  EXPECT_NEAR(total.epsilon, 0.6, 1e-12);
  EXPECT_NEAR(total.delta, 6e-4, 1e-12);
}

TEST(CompositionTest, ParallelTakesMax) {
  PrivacyBudget total = ParallelComposition(
      {{0.1, 3e-4}, {0.5, 1e-4}, {0.3, 2e-4}});
  EXPECT_DOUBLE_EQ(total.epsilon, 0.5);
  EXPECT_DOUBLE_EQ(total.delta, 3e-4);
}

TEST(CompositionTest, EmptyCompositionsAreZero) {
  EXPECT_DOUBLE_EQ(SequentialComposition({}).epsilon, 0.0);
  EXPECT_DOUBLE_EQ(ParallelComposition({}).epsilon, 0.0);
}

TEST(CompositionTest, AdvancedCompositionFormula) {
  const double eps = 0.1, delta = 1e-6, slack = 1e-5;
  const size_t k = 100;
  Result<PrivacyBudget> total = AdvancedComposition(eps, delta, k, slack);
  ASSERT_TRUE(total.ok());
  double expected = std::sqrt(2.0 * k * std::log(1.0 / slack)) * eps +
                    k * eps * (std::exp(eps) - 1.0);
  EXPECT_NEAR(total->epsilon, expected, 1e-12);
  EXPECT_NEAR(total->delta, k * delta + slack, 1e-15);
}

TEST(CompositionTest, AdvancedBeatsSequentialForManyQueries) {
  // For many small-eps queries the advanced bound is sublinear in k.
  const double eps = 0.01;
  const size_t k = 10000;
  Result<PrivacyBudget> adv = AdvancedComposition(eps, 0.0, k, 1e-6);
  ASSERT_TRUE(adv.ok());
  EXPECT_LT(adv->epsilon, eps * static_cast<double>(k));
}

TEST(CompositionTest, PerQuerySequentialSplitsEvenly) {
  Result<PrivacyBudget> per = PerQuerySequential(100.0, 1e-6, 4000);
  ASSERT_TRUE(per.ok());
  EXPECT_DOUBLE_EQ(per->epsilon, 100.0 / 4000.0);
  EXPECT_DOUBLE_EQ(per->delta, 1e-6 / 4000.0);
  EXPECT_FALSE(PerQuerySequential(0.0, 1e-6, 10).ok());
  EXPECT_FALSE(PerQuerySequential(1.0, 1e-6, 0).ok());
}

TEST(CompositionTest, PerQueryAdvancedMatchesPaperFormula) {
  const double xi = 100.0, psi = 1e-6;
  const size_t n = 3901;
  Result<PrivacyBudget> per = PerQueryAdvanced(xi, psi, n);
  ASSERT_TRUE(per.ok());
  double delta = psi / n;
  double expected = xi / (2.0 * std::sqrt(2.0 * n * std::log(1.0 / delta)));
  EXPECT_NEAR(per->epsilon, expected, 1e-12);
}

TEST(CompositionTest, PerQueryAdvancedBeatsSequential) {
  // Sec. 6.6: the advanced per-query epsilon is strictly larger (better
  // utility) than the sequential one for large n.
  const double xi = 50.0, psi = 1e-6;
  const size_t n = 5000;
  Result<PrivacyBudget> adv = PerQueryAdvanced(xi, psi, n);
  Result<PrivacyBudget> seq = PerQuerySequential(xi, psi, n);
  ASSERT_TRUE(adv.ok());
  ASSERT_TRUE(seq.ok());
  EXPECT_GT(adv->epsilon, seq->epsilon);
}

// ------------------------------------------------------------ Accountant --

TEST(AccountantTest, ChargesUntilExhausted) {
  PrivacyAccountant acct(1.0, 1e-3);
  EXPECT_TRUE(acct.Charge({0.4, 2e-4}).ok());
  EXPECT_TRUE(acct.Charge({0.4, 2e-4}).ok());
  EXPECT_EQ(acct.num_charges(), 2u);
  // Third charge of 0.4 would exceed eps=1.0.
  Status s = acct.Charge({0.4, 2e-4});
  EXPECT_EQ(s.code(), StatusCode::kBudgetExhausted);
  EXPECT_EQ(acct.num_charges(), 2u);
  EXPECT_NEAR(acct.Remaining().epsilon, 0.2, 1e-12);
}

TEST(AccountantTest, DeltaAloneCanExhaust) {
  PrivacyAccountant acct(10.0, 1e-4);
  EXPECT_TRUE(acct.Charge({0.1, 9e-5}).ok());
  EXPECT_EQ(acct.Charge({0.1, 5e-5}).code(), StatusCode::kBudgetExhausted);
}

TEST(AccountantTest, ExactBoundaryIsAllowed) {
  PrivacyAccountant acct(1.0, 1e-3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(acct.Charge({0.1, 1e-4}).ok()) << "charge " << i;
  }
  EXPECT_FALSE(acct.Charge({0.01, 0.0}).ok());
}

TEST(AccountantTest, NegativeChargeRejected) {
  PrivacyAccountant acct(1.0, 1e-3);
  EXPECT_EQ(acct.Charge({-0.1, 0.0}).code(), StatusCode::kInvalidArgument);
}

TEST(AccountantTest, CanChargeIsNonMutating) {
  PrivacyAccountant acct(1.0, 1e-3);
  EXPECT_TRUE(acct.CanCharge({0.9, 0.0}));
  EXPECT_TRUE(acct.CanCharge({0.9, 0.0}));
  EXPECT_DOUBLE_EQ(acct.spent().epsilon, 0.0);
  EXPECT_FALSE(acct.CanCharge({1.1, 0.0}));
}

TEST(AccountantTest, RemainingFloorsAtZero) {
  PrivacyAccountant acct(0.5, 1e-4);
  ASSERT_TRUE(acct.Charge({0.5, 1e-4}).ok());
  EXPECT_DOUBLE_EQ(acct.Remaining().epsilon, 0.0);
  EXPECT_DOUBLE_EQ(acct.Remaining().delta, 0.0);
}

}  // namespace
}  // namespace fedaqp
