// Tests for the baseline executors: local (non-collaborative) sampling and
// federated row-level Bernoulli sampling.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/local_sampling.h"
#include "baseline/row_sampling.h"
#include "common/math.h"
#include "common/rng.h"
#include "workload/datagen.h"

namespace fedaqp {
namespace {

class BaselineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig cfg;
    cfg.rows = 12000;
    cfg.seed = 71;
    cfg.dims = {{"a", 50, DistributionKind::kNormal, 0.4},
                {"b", 40, DistributionKind::kZipf, 1.3},
                {"c", 20, DistributionKind::kUniform, 0.0}};
    Result<std::vector<Table>> parts =
        GenerateFederatedTensors(cfg, {0, 1, 2}, 3);
    ASSERT_TRUE(parts.ok());
    for (size_t i = 0; i < parts->size(); ++i) {
      DataProvider::Options popts;
      popts.storage.cluster_capacity = 128;
      popts.n_min = 3;
      popts.seed = 500 + i;
      Result<std::unique_ptr<DataProvider>> p =
          DataProvider::Create((*parts)[i], popts);
      ASSERT_TRUE(p.ok());
      providers_.push_back(std::move(p).value());
    }
  }

  std::vector<DataProvider*> Ptrs() {
    std::vector<DataProvider*> out;
    for (auto& p : providers_) out.push_back(p.get());
    return out;
  }

  int64_t Truth(const RangeQuery& q) {
    int64_t total = 0;
    for (auto& p : providers_) total += p->store().EvaluateExact(q);
    return total;
  }

  std::vector<std::unique_ptr<DataProvider>> providers_;
};

TEST_F(BaselineFixture, LocalSamplingValidation) {
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount).Where(0, 0, 49).Build();
  EXPECT_FALSE(RunLocalSampling({}, q, 0.2, 0.1, 0.8, 1e-3).ok());
  EXPECT_FALSE(RunLocalSampling(Ptrs(), q, 0.0, 0.1, 0.8, 1e-3).ok());
  EXPECT_FALSE(RunLocalSampling(Ptrs(), q, 1.0, 0.1, 0.8, 1e-3).ok());
}

TEST_F(BaselineFixture, LocalSamplingScansFractionOfClusters) {
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount)
                     .Where(0, 5, 45)
                     .Where(1, 0, 30)
                     .Build();
  Result<LocalSamplingResult> r =
      RunLocalSampling(Ptrs(), q, 0.2, 1.0, 1.0, 1e-3);
  ASSERT_TRUE(r.ok());
  size_t total_clusters = 0;
  for (auto& p : providers_) total_clusters += p->store().num_clusters();
  EXPECT_LT(r->clusters_scanned, total_clusters);
  EXPECT_GT(r->clusters_scanned, 0u);
}

TEST_F(BaselineFixture, LocalSamplingTracksTruthLoosely) {
  RangeQuery q = RangeQueryBuilder(Aggregation::kSum)
                     .Where(0, 5, 45)
                     .Where(1, 0, 30)
                     .Build();
  double truth = static_cast<double>(Truth(q));
  RunningStats st;
  for (int rep = 0; rep < 30; ++rep) {
    Result<LocalSamplingResult> r =
        RunLocalSampling(Ptrs(), q, 0.4, 10.0, 2.0, 1e-3);
    ASSERT_TRUE(r.ok());
    st.Add(r->estimate);
  }
  EXPECT_LT(RelativeError(truth, st.mean()), 0.4);
}

TEST_F(BaselineFixture, RowSamplingScansEverythingYetEstimatesWell) {
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount)
                     .Where(0, 10, 40)
                     .Build();
  double truth = static_cast<double>(Truth(q));
  Rng rng(73);
  RunningStats st;
  size_t scanned = 0;
  for (int rep = 0; rep < 50; ++rep) {
    Result<RowSamplingResult> r = RunRowSampling(Ptrs(), q, 0.3, &rng);
    ASSERT_TRUE(r.ok());
    st.Add(r->estimate);
    scanned = r->rows_scanned;
  }
  size_t total_rows = 0;
  for (auto& p : providers_) total_rows += p->store().TotalRows();
  EXPECT_EQ(scanned, total_rows);  // the whole point: no scan savings
  EXPECT_LT(RelativeError(truth, st.mean()), 0.1);
}

TEST_F(BaselineFixture, RowSamplingValidation) {
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount).Where(0, 0, 49).Build();
  Rng rng(79);
  EXPECT_FALSE(RunRowSampling({}, q, 0.5, &rng).ok());
}

}  // namespace
}  // namespace fedaqp
