// End-to-end integration tests through the public Federation facade.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/fedaqp.h"

namespace fedaqp {
namespace {

std::unique_ptr<Federation> OpenSmallFederation(
    ReleaseMode mode = ReleaseMode::kLocalDp, double sampling_rate = 0.25,
    PrivacyBudget budget = {1.5, 1e-3}) {
  SyntheticConfig cfg;
  cfg.rows = 24000;
  cfg.seed = 404;
  cfg.dims = {{"age", 74, DistributionKind::kNormal, 0.3},
              {"dept", 30, DistributionKind::kZipf, 1.3},
              {"score", 50, DistributionKind::kUniform, 0.0}};
  Result<std::vector<Table>> parts =
      GenerateFederatedTensors(cfg, {0, 1, 2}, 4);
  EXPECT_TRUE(parts.ok());
  FederationOptions opts;
  opts.cluster_capacity = 128;
  opts.n_min = 4;
  opts.protocol.mode = mode;
  opts.protocol.sampling_rate = sampling_rate;
  opts.protocol.per_query_budget = budget;
  opts.protocol.total_xi = 1e6;
  opts.protocol.total_psi = 1e3;
  opts.seed = 777;
  Result<std::unique_ptr<Federation>> fed =
      Federation::Open(std::move(parts).value(), opts);
  EXPECT_TRUE(fed.ok());
  return std::move(fed).value();
}

TEST(IntegrationTest, OpenValidates) {
  EXPECT_FALSE(Federation::Open({}, FederationOptions{}).ok());
}

TEST(IntegrationTest, QuickstartFlow) {
  std::unique_ptr<Federation> fed = OpenSmallFederation();
  ASSERT_NE(fed, nullptr);
  EXPECT_EQ(fed->num_providers(), 4u);
  EXPECT_EQ(fed->schema().num_dims(), 3u);
  EXPECT_GT(fed->MetadataBytes(), 0u);

  RangeQuery q = RangeQueryBuilder(Aggregation::kCount)
                     .Where(0, 20, 60)
                     .Where(1, 0, 20)
                     .Build();
  Result<QueryResponse> exact = fed->QueryExact(q);
  Result<QueryResponse> priv = fed->Query(q);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(priv.ok());
  EXPECT_GT(exact->estimate, 0.0);
  // Private answer is in the right ballpark (generous: sampling + noise).
  EXPECT_LT(RelativeError(exact->estimate, priv->estimate), 0.8);
  // Privacy was spent on the private path only.
  EXPECT_DOUBLE_EQ(fed->accountant().spent().epsilon, 1.5);
  EXPECT_EQ(fed->accountant().num_charges(), 1u);
}

TEST(IntegrationTest, RepeatedQueriesConvergeNearTruth) {
  std::unique_ptr<Federation> fed =
      OpenSmallFederation(ReleaseMode::kLocalDp, 0.35, {2.0, 1e-3});
  ASSERT_NE(fed, nullptr);
  RangeQuery q = RangeQueryBuilder(Aggregation::kSum)
                     .Where(0, 10, 60)
                     .Where(2, 5, 45)
                     .Build();
  Result<QueryResponse> exact = fed->QueryExact(q);
  ASSERT_TRUE(exact.ok());
  double acc = 0.0;
  const int reps = 20;
  for (int i = 0; i < reps; ++i) {
    Result<QueryResponse> r = fed->Query(q);
    ASSERT_TRUE(r.ok());
    acc += r->estimate;
  }
  EXPECT_LT(RelativeError(exact->estimate, acc / reps), 0.25);
}

TEST(IntegrationTest, SmcModeEndToEnd) {
  std::unique_ptr<Federation> fed =
      OpenSmallFederation(ReleaseMode::kSmc, 0.35, {2.0, 1e-3});
  ASSERT_NE(fed, nullptr);
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount)
                     .Where(0, 15, 55)
                     .Build();
  Result<QueryResponse> exact = fed->QueryExact(q);
  ASSERT_TRUE(exact.ok());
  double acc = 0.0;
  const int reps = 15;
  for (int i = 0; i < reps; ++i) {
    Result<QueryResponse> r = fed->Query(q);
    ASSERT_TRUE(r.ok());
    acc += r->estimate;
  }
  EXPECT_LT(RelativeError(exact->estimate, acc / reps), 0.3);
}

TEST(IntegrationTest, CountAndSumAgreeOnTensorSemantics) {
  std::unique_ptr<Federation> fed = OpenSmallFederation();
  ASSERT_NE(fed, nullptr);
  // On a count tensor, SUM(Measure) >= COUNT(cells) for any range.
  RangeQuery count_q =
      RangeQueryBuilder(Aggregation::kCount).Where(0, 20, 50).Build();
  RangeQuery sum_q =
      RangeQueryBuilder(Aggregation::kSum).Where(0, 20, 50).Build();
  Result<QueryResponse> c = fed->QueryExact(count_q);
  Result<QueryResponse> s = fed->QueryExact(sum_q);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(s.ok());
  EXPECT_GE(s->estimate, c->estimate);
}

TEST(IntegrationTest, WorkloadOverFacadeProviders) {
  std::unique_ptr<Federation> fed =
      OpenSmallFederation(ReleaseMode::kLocalDp, 0.3, {2.0, 1e-3});
  ASSERT_NE(fed, nullptr);
  QueryGenOptions qopts;
  qopts.num_dims = 2;
  qopts.seed = 505;
  RandomQueryGenerator gen(fed->schema(), qopts);
  Result<std::vector<RangeQuery>> queries = gen.Workload(8);
  ASSERT_TRUE(queries.ok());
  FederationConfig config;
  config.sampling_rate = 0.3;
  config.per_query_budget = {2.0, 1e-3};
  config.total_xi = 1e6;
  config.total_psi = 1e3;
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::Create(fed->provider_ptrs(), config);
  ASSERT_TRUE(orch.ok());
  Result<std::vector<QueryMeasurement>> ms = RunWorkload(&orch.value(), *queries);
  ASSERT_TRUE(ms.ok());
  WorkloadMetrics metrics = Summarize(*ms);
  EXPECT_GT(metrics.mean_work_ratio, 1.5);
  EXPECT_LT(metrics.median_relative_error, 0.6);
}

TEST(IntegrationTest, MetadataFootprintScalesWithClusters) {
  std::unique_ptr<Federation> small = OpenSmallFederation();
  ASSERT_NE(small, nullptr);
  size_t clusters = 0;
  for (size_t i = 0; i < small->num_providers(); ++i) {
    clusters += small->provider(i)->store().num_clusters();
  }
  // KB-per-cluster scale, as reported in §6.1 of the paper.
  double per_cluster = static_cast<double>(small->MetadataBytes()) /
                       static_cast<double>(clusters);
  EXPECT_GT(per_cluster, 100.0);
  EXPECT_LT(per_cluster, 100.0 * 1024.0);
}

}  // namespace
}  // namespace fedaqp
