// Tests for the async submission API: the thread-safe FederationClient
// (Submit/QueryTicket/Cancel), its determinism contract — concurrent
// submitters produce answers and ledgers bit-identical to a synchronous
// replay of the same admission sequence, in-process and over loopback RPC
// — cancellation refunds under the paper's composition accounting,
// priority/deadline-aware scheduling, exact queries on the shared
// scheduler, pipelined session release, and progressive tickets. The
// whole file runs in the CI ThreadSanitizer job: the multi-threaded
// submitter stress and the concurrent ticket hammering double as the
// TSan surface for the client's locking.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/federation_client.h"
#include "exec/in_process_endpoint.h"
#include "exec/query_engine.h"
#include "exec/task_graph.h"
#include "exec/thread_pool.h"
#include "federation/orchestrator.h"
#include "federation/progressive.h"
#include "rpc/remote_endpoint.h"
#include "rpc/server.h"
#include "workload/datagen.h"

namespace fedaqp {
namespace {

std::unique_ptr<DataProvider> MakeProvider(size_t rows, uint64_t seed) {
  SyntheticConfig cfg;
  cfg.rows = rows;
  cfg.seed = seed;
  cfg.dims = {{"a", 200, DistributionKind::kNormal, 0.5},
              {"b", 100, DistributionKind::kZipf, 1.2}};
  Result<Table> t = GenerateSynthetic(cfg);
  EXPECT_TRUE(t.ok());
  Result<Table> tensor = t->BuildCountTensor({0, 1});
  EXPECT_TRUE(tensor.ok());
  DataProvider::Options popts;
  popts.storage.cluster_capacity = 128;
  popts.storage.layout = ClusterLayout::kShuffled;
  popts.storage.shuffle_seed = seed;
  popts.n_min = 4;
  popts.seed = seed * 3 + 1;
  Result<std::unique_ptr<DataProvider>> p = DataProvider::Create(*tensor, popts);
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

std::vector<std::unique_ptr<DataProvider>> MakeFederation(size_t providers) {
  std::vector<std::unique_ptr<DataProvider>> out;
  for (size_t i = 0; i < providers; ++i) {
    out.push_back(MakeProvider(4000, 901 + 13 * i));
  }
  return out;
}

std::vector<DataProvider*> Ptrs(
    std::vector<std::unique_ptr<DataProvider>>& providers) {
  std::vector<DataProvider*> out;
  for (auto& p : providers) out.push_back(p.get());
  return out;
}

FederationConfig BaseConfig(size_t threads, BatchScheduler scheduler) {
  FederationConfig config;
  config.per_query_budget = {1.0, 1e-3};
  config.sampling_rate = 0.3;
  config.total_xi = 1e6;
  config.total_psi = 1e3;
  config.seed = 626;
  config.num_threads = threads;
  config.scheduler = scheduler;
  return config;
}

RangeQuery WideQuery(int shift = 0) {
  return RangeQueryBuilder(Aggregation::kCount)
      .Where(0, 10 + shift, 170)
      .Build();
}

// ------------------------------------------------- determinism vs sync path --

// One submitter, one spec at a time: the async client's answers and
// ledger must equal the synchronous engine's for the same sequence.
TEST(FederationClientTest, SubmitWaitMatchesSynchronousEngine) {
  std::vector<RangeQuery> queries = {WideQuery(0), WideQuery(2), WideQuery(5)};

  auto async_providers = MakeFederation(3);
  FederationClient::Options copts;
  copts.protocol = BaseConfig(2, BatchScheduler::kTaskGraph);
  copts.analysts = {{"alice", 1e6, 1e3}};
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(Ptrs(async_providers), copts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  std::vector<double> async_estimates;
  for (const RangeQuery& q : queries) {
    QuerySpec spec;
    spec.analyst = "alice";
    spec.query = q;
    Result<QueryResponse> resp = (*client)->Submit(std::move(spec)).Wait();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    async_estimates.push_back(resp->estimate);
  }

  auto sync_providers = MakeFederation(3);
  QueryEngineOptions eopts;
  eopts.protocol = BaseConfig(1, BatchScheduler::kPhaseBarrier);
  eopts.analysts = {{"alice", 1e6, 1e3}};
  Result<std::unique_ptr<QueryEngine>> engine =
      QueryEngine::Create(Ptrs(sync_providers), eopts);
  ASSERT_TRUE(engine.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<QueryResponse> resp = (*engine)->Execute("alice", queries[i]);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->estimate, async_estimates[i]) << "query " << i;
  }
}

/// One concurrently submitted workload, replayed synchronously in the
/// admission order the client actually chose: answers, statuses, and
/// per-analyst ledgers must match bit-for-bit.
void RunSubmitterStress(size_t pool_threads, BatchScheduler scheduler,
                        bool loopback) {
  constexpr size_t kSubmitters = 4;
  constexpr size_t kPerSubmitter = 3;

  auto providers = MakeFederation(3);
  std::vector<std::unique_ptr<RpcProviderServer>> servers;
  FederationClient::Options copts;
  copts.protocol = BaseConfig(pool_threads, scheduler);
  for (size_t s = 0; s < kSubmitters; ++s) {
    copts.analysts.push_back({"a" + std::to_string(s), 1e6, 1e3});
  }
  Result<std::unique_ptr<FederationClient>> made = [&] {
    if (!loopback) return FederationClient::Create(Ptrs(providers), copts);
    std::vector<std::string> host_ports;
    for (auto& p : providers) {
      Result<std::unique_ptr<RpcProviderServer>> server =
          RpcProviderServer::Start(p.get());
      EXPECT_TRUE(server.ok()) << server.status().ToString();
      servers.push_back(std::move(server).value());
      host_ports.push_back("127.0.0.1:" +
                           std::to_string(servers.back()->port()));
    }
    Result<std::vector<std::shared_ptr<ProviderEndpoint>>> remote =
        RemoteEndpoint::ConnectAll(host_ports);
    EXPECT_TRUE(remote.ok()) << remote.status().ToString();
    return FederationClient::Create(std::move(remote).value(), copts);
  }();
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  FederationClient* client = made->get();

  // Concurrent submitters, plus a reader hammering ticket accessors while
  // queries execute (the TSan surface for the handle's locking).
  std::mutex collect_mutex;
  std::vector<QueryTicket> tickets;
  std::atomic<bool> reading{true};
  std::vector<std::thread> threads;
  threads.reserve(kSubmitters + 1);
  for (size_t s = 0; s < kSubmitters; ++s) {
    threads.emplace_back([&, s] {
      for (size_t i = 0; i < kPerSubmitter; ++i) {
        QuerySpec spec;
        spec.analyst = "a" + std::to_string(s);
        spec.query = WideQuery(static_cast<int>(s * kPerSubmitter + i));
        spec.priority = i % 2 == 0 ? QueryPriority::kHigh : QueryPriority::kLow;
        QueryTicket ticket = client->Submit(std::move(spec));
        std::lock_guard<std::mutex> lock(collect_mutex);
        tickets.push_back(std::move(ticket));
      }
    });
  }
  threads.emplace_back([&] {
    while (reading.load()) {
      std::lock_guard<std::mutex> lock(collect_mutex);
      for (QueryTicket& t : tickets) {
        t.Done();
        t.TryGet();
        t.Stats();
      }
    }
  });
  for (size_t s = 0; s < kSubmitters; ++s) threads[s].join();
  client->WaitIdle();
  reading.store(false);
  threads.back().join();

  // The admission sequence the client actually used.
  std::sort(tickets.begin(), tickets.end(),
            [](const QueryTicket& a, const QueryTicket& b) {
              return a.id() < b.id();
            });
  std::vector<AnalystQuery> sequence;
  std::vector<double> async_estimates;
  for (QueryTicket& ticket : tickets) {
    Result<QueryResponse> resp = ticket.Wait();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    sequence.push_back({ticket.spec().analyst, ticket.spec().query});
    async_estimates.push_back(resp->estimate);
  }

  // Synchronous replay of that sequence on an identical federation.
  auto replay_providers = MakeFederation(3);
  QueryEngineOptions eopts;
  eopts.protocol = BaseConfig(1, BatchScheduler::kPhaseBarrier);
  eopts.analysts = copts.analysts;
  Result<std::unique_ptr<QueryEngine>> engine =
      QueryEngine::Create(Ptrs(replay_providers), eopts);
  ASSERT_TRUE(engine.ok());
  std::vector<BatchOutcome> outcomes = (*engine)->ExecuteBatch(sequence);
  ASSERT_EQ(outcomes.size(), async_estimates.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok());
    EXPECT_EQ(outcomes[i].response.estimate, async_estimates[i])
        << "admission position " << i;
  }
  for (size_t s = 0; s < kSubmitters; ++s) {
    const std::string analyst = "a" + std::to_string(s);
    Result<PrivacyBudget> async_spent = client->ledger().Spent(analyst);
    Result<PrivacyBudget> replay_spent = (*engine)->ledger().Spent(analyst);
    ASSERT_TRUE(async_spent.ok());
    ASSERT_TRUE(replay_spent.ok());
    EXPECT_EQ(async_spent->epsilon, replay_spent->epsilon) << analyst;
    EXPECT_EQ(async_spent->delta, replay_spent->delta) << analyst;
  }
}

TEST(FederationClientStressTest, ConcurrentSubmittersMatchSequentialReplay) {
  for (size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("graph pool=" + std::to_string(threads));
    RunSubmitterStress(threads, BatchScheduler::kTaskGraph, /*loopback=*/false);
  }
  for (size_t threads : {1u, 8u}) {
    SCOPED_TRACE("barrier pool=" + std::to_string(threads));
    RunSubmitterStress(threads, BatchScheduler::kPhaseBarrier,
                       /*loopback=*/false);
  }
}

TEST(FederationClientStressTest, LoopbackSubmittersMatchSequentialReplay) {
  RunSubmitterStress(2, BatchScheduler::kTaskGraph, /*loopback=*/true);
}

// Regression: TicketStats' admission-round fields (batch wall, critical
// path) used to be written after delivery, so Wait() then Stats() could
// read zeros — or race the admission thread outright. They now publish
// atomically with the seal: the instant Wait() returns, Stats() must show
// the final, non-zero round stats. Hammered from many threads under TSan.
TEST(FederationClientStressTest, WaitThenStatsSeesSealedBatchStats) {
  constexpr size_t kSubmitters = 4;
  constexpr size_t kPerSubmitter = 4;
  auto providers = MakeFederation(2);
  FederationClient::Options copts;
  copts.protocol = BaseConfig(4, BatchScheduler::kTaskGraph);
  for (size_t s = 0; s < kSubmitters; ++s) {
    copts.analysts.push_back({"a" + std::to_string(s), 1e6, 1e3});
  }
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(Ptrs(providers), copts);
  ASSERT_TRUE(client.ok());

  std::vector<std::thread> threads;
  threads.reserve(kSubmitters);
  for (size_t s = 0; s < kSubmitters; ++s) {
    threads.emplace_back([&, s] {
      for (size_t i = 0; i < kPerSubmitter; ++i) {
        QuerySpec spec;
        spec.analyst = "a" + std::to_string(s);
        spec.query = WideQuery(static_cast<int>(s * kPerSubmitter + i));
        QueryTicket ticket = (*client)->Submit(std::move(spec));
        EXPECT_TRUE(ticket.Wait().ok());
        // The very next read — no WaitIdle, no sleep — sees the sealed
        // round stats: a batch that executed work took nonzero wall time.
        const TicketStats stats = ticket.Stats();
        EXPECT_GT(stats.batch_wall_seconds, 0.0);
        EXPECT_GT(stats.critical_path_seconds, 0.0);
        EXPECT_GE(stats.wall_seconds, 0.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

// ----------------------------------------------------------- cancellation --

// Cancellation stops stage *advancement* but never revokes a stage some
// provider already reached: its budget share is spent once per query
// (parallel composition), so peers must be allowed to finish it — this
// is what keeps Cancel()'s "too late, the result stands" promise true
// when the estimate stage was already claimed.
TEST(QueryCancelTokenTest, CancelDoesNotRevokeAGrantedStage) {
  QueryCancelToken released;
  EXPECT_TRUE(released.Claim(QueryStage::kEstimateReleased));
  EXPECT_EQ(released.Cancel(), QueryStage::kEstimateReleased);
  // A peer provider's claim of the already-granted stage still succeeds.
  EXPECT_TRUE(released.Claim(QueryStage::kEstimateReleased));
  EXPECT_TRUE(released.Claim(QueryStage::kSummaryPublished));

  QueryCancelToken summarized;
  EXPECT_TRUE(summarized.Claim(QueryStage::kSummaryPublished));
  EXPECT_EQ(summarized.Cancel(), QueryStage::kSummaryPublished);
  EXPECT_TRUE(summarized.Claim(QueryStage::kSummaryPublished));
  // ...but advancing to a new stage stays blocked.
  EXPECT_FALSE(summarized.Claim(QueryStage::kEstimateReleased));
  EXPECT_EQ(summarized.stage(), QueryStage::kSummaryPublished);
}

TEST(FederationClientCancelTest, CancelBeforeExecutionRefusesAndChargesNothing) {
  auto providers = MakeFederation(2);
  FederationClient::Options copts;
  copts.protocol = BaseConfig(1, BatchScheduler::kTaskGraph);
  copts.analysts = {{"alice", 1e6, 1e3}};
  copts.start_paused = true;
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(Ptrs(providers), copts);
  ASSERT_TRUE(client.ok());
  QuerySpec spec;
  spec.analyst = "alice";
  spec.query = WideQuery();
  QueryTicket ticket = (*client)->Submit(std::move(spec));
  EXPECT_TRUE(ticket.Cancel());
  (*client)->Resume();
  Result<QueryResponse> resp = ticket.Wait();
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kCancelled);
  Result<PrivacyBudget> spent = (*client)->ledger().Spent("alice");
  ASSERT_TRUE(spent.ok());
  EXPECT_EQ(spent->epsilon, 0.0);
  EXPECT_EQ(spent->delta, 0.0);
  // Nothing was charged, so nothing was refunded.
  EXPECT_EQ(ticket.Stats().refunded.epsilon, 0.0);
}

TEST(FederationClientCancelTest, CancelAfterCompletionIsANoop) {
  auto providers = MakeFederation(2);
  FederationClient::Options copts;
  copts.protocol = BaseConfig(1, BatchScheduler::kTaskGraph);
  copts.analysts = {{"alice", 1e6, 1e3}};
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(Ptrs(providers), copts);
  ASSERT_TRUE(client.ok());
  QuerySpec spec;
  spec.analyst = "alice";
  spec.query = WideQuery();
  QueryTicket ticket = (*client)->Submit(std::move(spec));
  ASSERT_TRUE(ticket.Wait().ok());
  EXPECT_FALSE(ticket.Cancel());
  Result<PrivacyBudget> spent = (*client)->ledger().Spent("alice");
  ASSERT_TRUE(spent.ok());
  EXPECT_EQ(spent->epsilon, 1.0);  // the full per-query eps stays spent
}

/// Endpoint wrapper that parks the first Cover call until released, so a
/// test can cancel a query at a known composition stage.
class GateEndpoint : public ProviderEndpoint {
 public:
  explicit GateEndpoint(std::shared_ptr<ProviderEndpoint> inner)
      : inner_(std::move(inner)) {}

  const EndpointInfo& info() const override { return inner_->info(); }

  Result<CoverReply> Cover(const CoverRequest& request) override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      entered_ = true;
      cv_.notify_all();
      cv_.wait(lock, [&] { return released_; });
    }
    return inner_->Cover(request);
  }
  Result<SummaryReply> PublishSummary(const SummaryRequest& r) override {
    return inner_->PublishSummary(r);
  }
  Result<EstimateReply> Approximate(const ApproximateRequest& r) override {
    return inner_->Approximate(r);
  }
  Result<EstimateReply> ExactAnswer(const ExactAnswerRequest& r) override {
    return inner_->ExactAnswer(r);
  }
  Result<ExactScanReply> ExactFullScan(const ExactScanRequest& r) override {
    return inner_->ExactFullScan(r);
  }
  void EndQuery(uint64_t id) override { inner_->EndQuery(id); }

  void WaitEntered() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return entered_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::shared_ptr<ProviderEndpoint> inner_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool released_ = false;
};

// A query cancelled after its summary phase began (eps_O spent) but
// before any estimate release gets the sampling + estimate shares — and
// the full delta — refunded: the paper's composition accounting, stage
// by stage.
TEST(FederationClientCancelTest, MidQueryCancelRefundsUnexercisedShares) {
  auto providers = MakeFederation(2);
  Result<std::vector<std::shared_ptr<ProviderEndpoint>>> inner =
      MakeInProcessEndpoints(Ptrs(providers));
  ASSERT_TRUE(inner.ok());
  auto gate = std::make_shared<GateEndpoint>((*inner)[0]);
  std::vector<std::shared_ptr<ProviderEndpoint>> endpoints = {gate,
                                                              (*inner)[1]};
  FederationClient::Options copts;
  copts.protocol = BaseConfig(2, BatchScheduler::kTaskGraph);
  copts.analysts = {{"alice", 1e6, 1e3}};
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(endpoints, copts);
  ASSERT_TRUE(client.ok());

  QuerySpec spec;
  spec.analyst = "alice";
  spec.query = WideQuery();
  QueryTicket ticket = (*client)->Submit(std::move(spec));
  // The summary stage is claimed before Cover is called, so once the
  // gate reports entry the query is at kSummaryPublished.
  gate->WaitEntered();
  EXPECT_TRUE(ticket.Cancel());
  gate->Release();

  Result<QueryResponse> resp = ticket.Wait();
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kCancelled);
  (*client)->WaitIdle();

  const FederationConfig& config = copts.protocol;
  const double expected_spent =
      config.split.hp_allocation * config.per_query_budget.epsilon;
  Result<PrivacyBudget> spent = (*client)->ledger().Spent("alice");
  ASSERT_TRUE(spent.ok());
  EXPECT_NEAR(spent->epsilon, expected_spent, 1e-12);
  EXPECT_NEAR(spent->delta, 0.0, 1e-15);  // delta is an estimate-stage cost
  const TicketStats stats = ticket.Stats();
  EXPECT_NEAR(stats.refunded.epsilon,
              config.per_query_budget.epsilon - expected_spent, 1e-12);
  EXPECT_NEAR(stats.refunded.delta, config.per_query_budget.delta, 1e-15);
}

// A workload cancelled before execution never reaches the remote
// endpoints' async issue path: the scheduler runs the self-skipping
// stubs inline, so no per-connection dispatch thread is ever started
// (and no no-op closures queue behind live traffic).
TEST(FederationClientCancelTest, CancelledQueriesBypassRemoteDispatch) {
  auto providers = MakeFederation(2);
  std::vector<std::unique_ptr<RpcProviderServer>> servers;
  std::vector<std::string> host_ports;
  for (auto& p : providers) {
    Result<std::unique_ptr<RpcProviderServer>> server =
        RpcProviderServer::Start(p.get());
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    servers.push_back(std::move(server).value());
    host_ports.push_back("127.0.0.1:" + std::to_string(servers.back()->port()));
  }
  Result<std::vector<std::shared_ptr<ProviderEndpoint>>> remote =
      RemoteEndpoint::ConnectAll(host_ports);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  FederationClient::Options copts;
  copts.protocol = BaseConfig(2, BatchScheduler::kTaskGraph);
  copts.analysts = {{"alice", 1e6, 1e3}};
  copts.start_paused = true;
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(*remote, copts);
  ASSERT_TRUE(client.ok());
  QuerySpec spec;
  spec.analyst = "alice";
  spec.query = WideQuery();
  QueryTicket ticket = (*client)->Submit(std::move(spec));
  EXPECT_TRUE(ticket.Cancel());
  (*client)->Resume();
  Result<QueryResponse> resp = ticket.Wait();
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kCancelled);
  (*client)->WaitIdle();
  for (const auto& endpoint : *remote) {
    auto* remote_endpoint = static_cast<RemoteEndpoint*>(endpoint.get());
    EXPECT_FALSE(remote_endpoint->dispatch_started());
  }
}

// --------------------------------------------------- priority and deadline --

TEST(TaskGraphPriorityTest, ReadyQueueDrainsByPriorityDeadlineThenKey) {
  // A null pool drains inline in deterministic urgency order. One dummy
  // root gates everything so all contested nodes are ready simultaneously.
  TaskGraph graph(nullptr);
  std::vector<std::string> order;
  auto record = [&](const char* name) {
    order.push_back(name);
    return Status::OK();
  };
  TaskGraph::TaskId root = graph.Add(TaskKey{0, TaskPhase::kGeneric},
                                     [] { return Status::OK(); });
  TaskOptions low;
  low.priority = 2;
  TaskOptions normal;  // priority 1
  TaskOptions high;
  high.priority = 0;
  TaskOptions high_soon = high;
  high_soon.deadline = 1.0;
  TaskOptions high_later = high;
  high_later.deadline = 5.0;
  graph.Add(TaskKey{1, TaskPhase::kGeneric}, [&] { return record("low"); },
            {root}, nullptr, low);
  graph.Add(TaskKey{2, TaskPhase::kGeneric}, [&] { return record("normal"); },
            {root}, nullptr, normal);
  graph.Add(TaskKey{3, TaskPhase::kGeneric},
            [&] { return record("high_later"); }, {root}, nullptr, high_later);
  graph.Add(TaskKey{4, TaskPhase::kGeneric},
            [&] { return record("high_soon"); }, {root}, nullptr, high_soon);
  graph.Add(TaskKey{5, TaskPhase::kGeneric},
            [&] { return record("high_nodeadline"); }, {root}, nullptr, high);
  graph.Run();
  const std::vector<std::string> expected = {
      "high_soon", "high_later", "high_nodeadline", "normal", "low"};
  EXPECT_EQ(order, expected);
}

TEST(FederationClientPriorityTest, HighPriorityCompletesBeforeLowInOneRound) {
  auto providers = MakeFederation(2);
  FederationClient::Options copts;
  copts.protocol = BaseConfig(1, BatchScheduler::kTaskGraph);
  copts.analysts = {{"alice", 1e6, 1e3}};
  copts.start_paused = true;
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(Ptrs(providers), copts);
  ASSERT_TRUE(client.ok());
  QuerySpec low;
  low.analyst = "alice";
  low.query = WideQuery(0);
  low.priority = QueryPriority::kLow;
  QuerySpec high;
  high.analyst = "alice";
  high.query = WideQuery(1);
  high.priority = QueryPriority::kHigh;
  // Low submitted FIRST: under FIFO it would also complete first.
  QueryTicket low_ticket = (*client)->Submit(std::move(low));
  QueryTicket high_ticket = (*client)->Submit(std::move(high));
  (*client)->Resume();
  ASSERT_TRUE(low_ticket.Wait().ok());
  ASSERT_TRUE(high_ticket.Wait().ok());
  (*client)->WaitIdle();
  // Same admission round, one worker: the high-priority query's nodes —
  // and therefore its delivery — run first, even though it arrived last.
  // Its measured wall is strictly smaller although it was submitted
  // later (delivery order is deterministic on a single-thread pool).
  EXPECT_LT(high_ticket.Stats().wall_seconds,
            low_ticket.Stats().wall_seconds);
}

TEST(FederationClientDeadlineTest, ExpiredDeadlineIsRefusedBeforeCharging) {
  auto providers = MakeFederation(2);
  FederationClient::Options copts;
  copts.protocol = BaseConfig(1, BatchScheduler::kTaskGraph);
  copts.analysts = {{"alice", 1e6, 1e3}};
  copts.start_paused = true;
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(Ptrs(providers), copts);
  ASSERT_TRUE(client.ok());
  QuerySpec spec;
  spec.analyst = "alice";
  spec.query = WideQuery();
  spec.deadline_seconds = 1e-9;
  QueryTicket ticket = (*client)->Submit(std::move(spec));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  (*client)->Resume();
  Result<QueryResponse> resp = ticket.Wait();
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kDeadlineExceeded);
  Result<PrivacyBudget> spent = (*client)->ledger().Spent("alice");
  ASSERT_TRUE(spent.ok());
  EXPECT_EQ(spent->epsilon, 0.0);
}

// ------------------------------------------------ exact on one scheduler --

TEST(FederationClientExactTest, ExactSpecsMatchTheExactBaseline) {
  auto providers = MakeFederation(3);
  const RangeQuery q = WideQuery();
  double expected = 0.0;
  for (DataProvider* p : Ptrs(providers)) {
    expected += static_cast<double>(p->store().EvaluateExact(q));
  }
  for (BatchScheduler scheduler :
       {BatchScheduler::kTaskGraph, BatchScheduler::kPhaseBarrier}) {
    FederationClient::Options copts;
    copts.protocol = BaseConfig(2, scheduler);
    copts.analysts = {{"alice", 1e6, 1e3}};
    Result<std::unique_ptr<FederationClient>> client =
        FederationClient::Create(Ptrs(providers), copts);
    ASSERT_TRUE(client.ok());
    // Mixed kinds in one submission stream: the exact query shares the
    // scheduler with a private one.
    QuerySpec approx;
    approx.analyst = "alice";
    approx.query = q;
    QuerySpec exact;
    exact.query = q;
    exact.kind = QueryKind::kExact;
    QueryTicket approx_ticket = (*client)->Submit(std::move(approx));
    QueryTicket exact_ticket = (*client)->Submit(std::move(exact));
    Result<QueryResponse> exact_resp = exact_ticket.Wait();
    ASSERT_TRUE(exact_resp.ok()) << exact_resp.status().ToString();
    EXPECT_EQ(exact_resp->estimate, expected);
    EXPECT_FALSE(exact_resp->approximated);
    EXPECT_EQ(exact_resp->spent.epsilon, 0.0);  // no budget for exact
    ASSERT_TRUE(approx_ticket.Wait().ok());
  }
  // ExecuteExact (the orchestrator surface) runs on the graph too and
  // must agree.
  Result<QueryOrchestrator> orch = QueryOrchestrator::Create(
      Ptrs(providers), BaseConfig(2, BatchScheduler::kTaskGraph));
  ASSERT_TRUE(orch.ok());
  Result<QueryResponse> direct = orch->ExecuteExact(q);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->estimate, expected);
}

// ------------------------------------------------- pipelined session release --

// EndQuery rides the task graph as kRelease nodes; every session must
// still be closed by the time the batch returns.
TEST(FederationClientReleaseTest, GraphBatchReleasesEverySession) {
  auto providers = MakeFederation(2);
  Result<std::vector<std::shared_ptr<ProviderEndpoint>>> endpoints =
      MakeInProcessEndpoints(Ptrs(providers));
  ASSERT_TRUE(endpoints.ok());
  Result<QueryOrchestrator> orch = QueryOrchestrator::CreateFromEndpoints(
      *endpoints, BaseConfig(4, BatchScheduler::kTaskGraph));
  ASSERT_TRUE(orch.ok());
  std::vector<RangeQuery> queries = {WideQuery(0), WideQuery(1), WideQuery(2)};
  std::vector<BatchOutcome> outcomes = orch->ExecuteBatch(queries);
  for (const BatchOutcome& out : outcomes) EXPECT_TRUE(out.ok());
  for (const auto& endpoint : *endpoints) {
    auto* in_process = static_cast<InProcessEndpoint*>(endpoint.get());
    EXPECT_EQ(in_process->num_open_sessions(), 0u);
  }
}

// -------------------------------------------------------------- progressive --

TEST(FederationClientProgressiveTest, TicketSurfacesRoundsBitIdentically) {
  const RangeQuery q = WideQuery();
  FederationClient::Options copts;
  copts.protocol = BaseConfig(2, BatchScheduler::kTaskGraph);
  copts.analysts = {{"alice", 1e6, 1e3}};

  auto client_providers = MakeFederation(3);
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(Ptrs(client_providers), copts);
  ASSERT_TRUE(client.ok());
  QuerySpec spec;
  spec.analyst = "alice";
  spec.query = q;
  spec.kind = QueryKind::kProgressive;
  spec.progressive_rounds = 3;
  QueryTicket ticket = (*client)->Submit(std::move(spec));
  Result<QueryResponse> resp = ticket.Wait();
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  std::vector<ProgressiveRound> rounds = ticket.Refinements();
  ASSERT_EQ(rounds.size(), 3u);
  EXPECT_EQ(resp->estimate, rounds.back().estimate);
  // Full consumption: the whole per-query budget is spent, no refund.
  Result<PrivacyBudget> spent = (*client)->ledger().Spent("alice");
  ASSERT_TRUE(spent.ok());
  EXPECT_NEAR(spent->epsilon, 1.0, 1e-9);
  EXPECT_EQ(ticket.Stats().refunded.epsilon, 0.0);

  // Bit-identical to the direct progressive runner on an identical
  // federation with the same options.
  auto direct_providers = MakeFederation(3);
  ProgressiveOptions popts;
  popts.rounds = 3;
  popts.sampling_rate = copts.protocol.sampling_rate;
  popts.budget = copts.protocol.per_query_budget;
  popts.split = copts.protocol.split;
  popts.num_threads = copts.protocol.num_threads;
  Result<std::vector<ProgressiveRound>> direct =
      ExecuteProgressive(Ptrs(direct_providers), q, popts);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(direct->size(), rounds.size());
  for (size_t r = 0; r < rounds.size(); ++r) {
    EXPECT_EQ(rounds[r].estimate, (*direct)[r].estimate) << "round " << r;
  }
}

TEST(FederationClientProgressiveTest, EndpointBackedClientRefusesProgressive) {
  auto providers = MakeFederation(2);
  Result<std::vector<std::shared_ptr<ProviderEndpoint>>> endpoints =
      MakeInProcessEndpoints(Ptrs(providers));
  ASSERT_TRUE(endpoints.ok());
  FederationClient::Options copts;
  copts.protocol = BaseConfig(1, BatchScheduler::kTaskGraph);
  copts.analysts = {{"alice", 1e6, 1e3}};
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(*endpoints, copts);
  ASSERT_TRUE(client.ok());
  QuerySpec spec;
  spec.analyst = "alice";
  spec.query = WideQuery();
  spec.kind = QueryKind::kProgressive;
  Result<QueryResponse> resp = (*client)->Submit(std::move(spec)).Wait();
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kFailedPrecondition);
  // Refused before charging.
  Result<PrivacyBudget> spent = (*client)->ledger().Spent("alice");
  ASSERT_TRUE(spent.ok());
  EXPECT_EQ(spent->epsilon, 0.0);
}

// ------------------------------------------------------------- lifecycle --

TEST(FederationClientLifecycleTest, DestructionDrainsOutstandingQueries) {
  auto providers = MakeFederation(2);
  FederationClient::Options copts;
  copts.protocol = BaseConfig(2, BatchScheduler::kTaskGraph);
  copts.analysts = {{"alice", 1e6, 1e3}};
  copts.start_paused = true;
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(Ptrs(providers), copts);
  ASSERT_TRUE(client.ok());
  std::vector<QuerySpec> specs(3);
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].analyst = "alice";
    specs[i].query = WideQuery(static_cast<int>(i));
  }
  std::vector<QueryTicket> tickets = (*client)->SubmitAll(std::move(specs));
  // Destruction overrides the pause and drains everything first.
  client->reset();
  for (QueryTicket& ticket : tickets) {
    Result<QueryResponse> resp = ticket.Wait();
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
  }
}

TEST(FederationClientLifecycleTest, UnknownAnalystAndJobsWork) {
  auto providers = MakeFederation(2);
  FederationClient::Options copts;
  copts.protocol = BaseConfig(1, BatchScheduler::kTaskGraph);
  copts.analysts = {{"alice", 1e6, 1e3}};
  Result<std::unique_ptr<FederationClient>> client =
      FederationClient::Create(Ptrs(providers), copts);
  ASSERT_TRUE(client.ok());
  QuerySpec spec;
  spec.analyst = "mallory";
  spec.query = WideQuery();
  Result<QueryResponse> resp = (*client)->Submit(std::move(spec)).Wait();
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kNotFound);

  // RunJob serializes arbitrary orchestrator work into the admission
  // sequence.
  double exact = 0.0;
  Status job = (*client)->RunJob([&](QueryOrchestrator& orch) {
    Result<QueryResponse> r = orch.ExecuteExact(WideQuery());
    ASSERT_TRUE(r.ok());
    exact = r->estimate;
  });
  ASSERT_TRUE(job.ok());
  EXPECT_GT(exact, 0.0);
}

}  // namespace
}  // namespace fedaqp
