// Unit tests for src/storage: schema, tables, count tensors, range queries,
// clusters, cluster stores, and the compressed mmap-persistent store format.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/thread_pool.h"
#include "storage/cluster_store.h"
#include "storage/persistence.h"
#include "storage/range_query.h"
#include "storage/store_file.h"
#include "storage/table.h"

namespace fedaqp {
namespace {

Schema TwoDimSchema() {
  Schema s;
  EXPECT_TRUE(s.AddDimension("age", 100).ok());
  EXPECT_TRUE(s.AddDimension("income", 50).ok());
  return s;
}

Table SmallTable() {
  Table t(TwoDimSchema());
  // (age, income)
  EXPECT_TRUE(t.AppendValues({20, 10}).ok());
  EXPECT_TRUE(t.AppendValues({25, 10}).ok());
  EXPECT_TRUE(t.AppendValues({25, 20}).ok());
  EXPECT_TRUE(t.AppendValues({70, 45}).ok());
  return t;
}

// ---------------------------------------------------------------- Schema --

TEST(SchemaTest, AddAndLookup) {
  Schema s = TwoDimSchema();
  EXPECT_EQ(s.num_dims(), 2u);
  EXPECT_EQ(*s.IndexOf("age"), 0u);
  EXPECT_EQ(*s.IndexOf("income"), 1u);
  EXPECT_EQ(s.IndexOf("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(s.dim(1).domain_size, 50);
}

TEST(SchemaTest, RejectsDuplicatesAndBadDomains) {
  Schema s;
  EXPECT_TRUE(s.AddDimension("a", 10).ok());
  EXPECT_FALSE(s.AddDimension("a", 5).ok());
  EXPECT_FALSE(s.AddDimension("b", 0).ok());
  EXPECT_FALSE(s.AddDimension("", 5).ok());
}

TEST(SchemaTest, InDomain) {
  Schema s = TwoDimSchema();
  EXPECT_TRUE(s.InDomain(0, 0));
  EXPECT_TRUE(s.InDomain(0, 99));
  EXPECT_FALSE(s.InDomain(0, 100));
  EXPECT_FALSE(s.InDomain(0, -1));
  EXPECT_FALSE(s.InDomain(5, 0));
}

TEST(SchemaTest, ProjectKeepsOrderAndNames) {
  Schema s = TwoDimSchema();
  Result<Schema> p = s.Project({1});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_dims(), 1u);
  EXPECT_EQ(p->dim(0).name, "income");
  EXPECT_FALSE(s.Project({5}).ok());
}

TEST(SchemaTest, EqualityAndToString) {
  EXPECT_TRUE(TwoDimSchema() == TwoDimSchema());
  Schema other;
  ASSERT_TRUE(other.AddDimension("age", 100).ok());
  EXPECT_FALSE(TwoDimSchema() == other);
  EXPECT_EQ(TwoDimSchema().ToString(), "age[100], income[50]");
}

// ----------------------------------------------------------------- Table --

TEST(TableTest, AppendValidation) {
  Table t(TwoDimSchema());
  EXPECT_TRUE(t.AppendValues({5, 5}).ok());
  EXPECT_FALSE(t.AppendValues({5}).ok());            // arity
  EXPECT_FALSE(t.AppendValues({100, 5}).ok());       // out of domain
  Row bad;
  bad.values = {5, 5};
  bad.measure = 0;
  EXPECT_FALSE(t.Append(bad).ok());                  // non-positive measure
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, EvaluateCountAndSum) {
  Table t = SmallTable();
  RangeQuery count = RangeQueryBuilder(Aggregation::kCount)
                         .Where(0, 20, 30)
                         .Build();
  EXPECT_EQ(t.Evaluate(count), 3);
  RangeQuery both = RangeQueryBuilder(Aggregation::kCount)
                        .Where(0, 20, 30)
                        .Where(1, 15, 30)
                        .Build();
  EXPECT_EQ(t.Evaluate(both), 1);
}

TEST(TableTest, EvaluateEmptyRangeMatchesAll) {
  Table t = SmallTable();
  RangeQuery q(Aggregation::kCount, {});
  EXPECT_EQ(t.Evaluate(q), 4);
}

TEST(TableTest, TotalMeasureCountsIndividuals) {
  Table t = SmallTable();
  EXPECT_EQ(t.TotalMeasure(), 4);
}

TEST(TableTest, CountTensorMergesCells) {
  Table t = SmallTable();
  Result<Table> tensor = t.BuildCountTensor({0});
  ASSERT_TRUE(tensor.ok());
  // Ages 20, 25, 70 -> 3 cells; 25 has measure 2.
  EXPECT_EQ(tensor->num_rows(), 3u);
  EXPECT_EQ(tensor->TotalMeasure(), 4);
  RangeQuery q25 = RangeQueryBuilder(Aggregation::kSum).Where(0, 25, 25).Build();
  EXPECT_EQ(tensor->Evaluate(q25), 2);
  RangeQuery c25 =
      RangeQueryBuilder(Aggregation::kCount).Where(0, 25, 25).Build();
  EXPECT_EQ(tensor->Evaluate(c25), 1);
}

TEST(TableTest, CountTensorSumEqualsRawCount) {
  // SUM(Measure) on the tensor equals COUNT(*) on the raw table for any
  // range over tensor dimensions (Fig. 2 of the paper).
  Rng rng(5);
  Table raw(TwoDimSchema());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(raw.AppendValues({rng.UniformInt(0, 99), rng.UniformInt(0, 49)})
                    .ok());
  }
  Result<Table> tensor = raw.BuildCountTensor({0, 1});
  ASSERT_TRUE(tensor.ok());
  for (int trial = 0; trial < 20; ++trial) {
    Value lo = rng.UniformInt(0, 80);
    Value hi = rng.UniformInt(lo, 99);
    RangeQuery raw_count =
        RangeQueryBuilder(Aggregation::kCount).Where(0, lo, hi).Build();
    RangeQuery tensor_sum =
        RangeQueryBuilder(Aggregation::kSum).Where(0, lo, hi).Build();
    EXPECT_EQ(raw.Evaluate(raw_count), tensor->Evaluate(tensor_sum));
  }
}

TEST(TableTest, PartitionHorizontallyPreservesRows) {
  Table t = SmallTable();
  Result<std::vector<Table>> parts = t.PartitionHorizontally(3);
  ASSERT_TRUE(parts.ok());
  size_t total = 0;
  for (const auto& p : *parts) {
    EXPECT_TRUE(p.schema() == t.schema());
    total += p.num_rows();
  }
  EXPECT_EQ(total, t.num_rows());
  EXPECT_FALSE(t.PartitionHorizontally(0).ok());
}

// ------------------------------------------------------------ RangeQuery --

TEST(RangeQueryTest, ValidateCatchesBadQueries) {
  Schema s = TwoDimSchema();
  EXPECT_TRUE(
      RangeQueryBuilder(Aggregation::kCount).Where(0, 0, 99).Build()
          .Validate(s).ok());
  EXPECT_FALSE(
      RangeQueryBuilder(Aggregation::kCount).Where(5, 0, 1).Build()
          .Validate(s).ok());  // bad dim
  EXPECT_FALSE(
      RangeQueryBuilder(Aggregation::kCount).Where(0, 5, 4).Build()
          .Validate(s).ok());  // empty interval
  EXPECT_FALSE(
      RangeQueryBuilder(Aggregation::kCount).Where(0, 0, 100).Build()
          .Validate(s).ok());  // outside domain
  EXPECT_FALSE(RangeQueryBuilder(Aggregation::kCount)
                   .Where(0, 0, 10)
                   .Where(0, 5, 9)
                   .Build()
                   .Validate(s)
                   .ok());  // duplicate dim
}

TEST(RangeQueryTest, SerializeRoundTrip) {
  RangeQuery q = RangeQueryBuilder(Aggregation::kSum)
                     .Where(0, 5, 25)
                     .Where(1, 0, 49)
                     .Build();
  ByteWriter w;
  q.Serialize(&w);
  ByteReader r(w.bytes());
  Result<RangeQuery> back = RangeQuery::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->aggregation(), Aggregation::kSum);
  ASSERT_EQ(back->ranges().size(), 2u);
  EXPECT_EQ(back->ranges()[0].dim_index, 0u);
  EXPECT_EQ(back->ranges()[0].lo, 5);
  EXPECT_EQ(back->ranges()[1].hi, 49);
}

TEST(RangeQueryTest, ToStringIsReadable) {
  Schema s = TwoDimSchema();
  RangeQuery q =
      RangeQueryBuilder(Aggregation::kCount).Where(0, 20, 40).Build();
  EXPECT_EQ(q.ToString(s), "SELECT COUNT(*) WHERE 20<=age<=40");
}

// --------------------------------------------------------------- Cluster --

TEST(ClusterTest, ScanCountsAndSums) {
  Cluster c(0, 2);
  Row r1{{10, 5}, 2};
  Row r2{{20, 6}, 3};
  Row r3{{30, 7}, 4};
  c.Append(r1);
  c.Append(r2);
  c.Append(r3);
  EXPECT_EQ(c.num_rows(), 3u);
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount).Where(0, 10, 20).Build();
  ScanResult res = c.Scan(q);
  EXPECT_EQ(res.count, 2);
  EXPECT_EQ(res.sum, 5);
  EXPECT_EQ(res.For(Aggregation::kCount), 2);
  EXPECT_EQ(res.For(Aggregation::kSum), 5);
}

TEST(ClusterTest, MinMaxTracking) {
  Cluster c(1, 1);
  EXPECT_GT(c.MinValue(0), c.MaxValue(0));  // empty: min 0 > max -1
  Row r{{42}, 1};
  c.Append(r);
  EXPECT_EQ(c.MinValue(0), 42);
  EXPECT_EQ(c.MaxValue(0), 42);
  Row r2{{7}, 1};
  c.Append(r2);
  EXPECT_EQ(c.MinValue(0), 7);
  EXPECT_EQ(c.MaxValue(0), 42);
}

TEST(ClusterTest, FractionGreaterEqualUsesDenominator) {
  Cluster c(2, 1);
  for (Value v : {1, 2, 3, 4}) {
    Row r{{v}, 1};
    c.Append(r);
  }
  // Denominator is the capacity S (8), not the row count (4).
  EXPECT_DOUBLE_EQ(c.FractionGreaterEqual(0, 3, 8), 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(c.FractionGreaterEqual(0, 0, 8), 4.0 / 8.0);
  EXPECT_DOUBLE_EQ(c.FractionGreaterEqual(0, 5, 8), 0.0);
}

// ----------------------------------------------------------- ClusterStore --

Table WideTable(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table t(TwoDimSchema());
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(
        t.AppendValues({rng.UniformInt(0, 99), rng.UniformInt(0, 49)}).ok());
  }
  return t;
}

TEST(ClusterStoreTest, SplitsIntoBalancedCapacityChunks) {
  Table t = WideTable(1000, 3);
  ClusterStoreOptions opts;
  opts.cluster_capacity = 128;
  Result<ClusterStore> store = ClusterStore::Build(t, opts);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->num_clusters(), 8u);  // ceil(1000/128)
  EXPECT_EQ(store->TotalRows(), 1000u);
  // Balanced: every cluster within one row of the others, none above S,
  // and in particular no runt final cluster.
  for (size_t i = 0; i < store->num_clusters(); ++i) {
    EXPECT_LE(store->cluster(i).num_rows(), 128u);
    EXPECT_GE(store->cluster(i).num_rows(), 125u);  // 1000/8 = 125
  }
}

TEST(ClusterStoreTest, RejectsZeroCapacity) {
  Table t = WideTable(10, 3);
  ClusterStoreOptions opts;
  opts.cluster_capacity = 0;
  EXPECT_FALSE(ClusterStore::Build(t, opts).ok());
}

TEST(ClusterStoreTest, ExactEvaluationMatchesTableScan) {
  Table t = WideTable(2000, 7);
  for (ClusterLayout layout :
       {ClusterLayout::kSequential, ClusterLayout::kSortedByFirstDim,
        ClusterLayout::kShuffled}) {
    ClusterStoreOptions opts;
    opts.cluster_capacity = 100;
    opts.layout = layout;
    Result<ClusterStore> store = ClusterStore::Build(t, opts);
    ASSERT_TRUE(store.ok());
    Rng rng(11);
    for (int trial = 0; trial < 10; ++trial) {
      Value lo = rng.UniformInt(0, 60);
      Value hi = rng.UniformInt(lo, 99);
      for (Aggregation agg : {Aggregation::kCount, Aggregation::kSum}) {
        RangeQuery q = RangeQueryBuilder(agg).Where(0, lo, hi).Build();
        EXPECT_EQ(store->EvaluateExact(q), t.Evaluate(q));
      }
    }
  }
}

TEST(ClusterStoreTest, SortedLayoutConcentratesValues) {
  Table t = WideTable(1000, 13);
  ClusterStoreOptions opts;
  opts.cluster_capacity = 100;
  opts.layout = ClusterLayout::kSortedByFirstDim;
  Result<ClusterStore> store = ClusterStore::Build(t, opts);
  ASSERT_TRUE(store.ok());
  // With sorting, consecutive clusters hold increasing value ranges.
  for (size_t i = 0; i + 1 < store->num_clusters(); ++i) {
    EXPECT_LE(store->cluster(i).MaxValue(0), store->cluster(i + 1).MinValue(0));
  }
}

TEST(ClusterStoreTest, ScanClustersSubset) {
  Table t = WideTable(500, 17);
  ClusterStoreOptions opts;
  opts.cluster_capacity = 100;
  Result<ClusterStore> store = ClusterStore::Build(t, opts);
  ASSERT_TRUE(store.ok());
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount).Where(0, 0, 99).Build();
  Result<ScanResult> all = store->ScanClusters(q, {0, 1, 2, 3, 4});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->count, 500);
  Result<ScanResult> one = store->ScanClusters(q, {0});
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->count, 100);
}

// A bad id list is a protocol error: out-of-range ids were UB-adjacent and
// duplicates silently double-counted before the guard existed.
TEST(ClusterStoreTest, ScanClustersRejectsOutOfRangeAndDuplicateIds) {
  Table t = WideTable(500, 17);
  ClusterStoreOptions opts;
  opts.cluster_capacity = 100;
  Result<ClusterStore> store = ClusterStore::Build(t, opts);
  ASSERT_TRUE(store.ok());
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount).Where(0, 0, 99).Build();

  Result<ScanResult> out_of_range = store->ScanClusters(q, {99});
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kInvalidArgument);

  Result<ScanResult> duplicate = store->ScanClusters(q, {1, 2, 1});
  EXPECT_EQ(duplicate.status().code(), StatusCode::kInvalidArgument);

  // The guard applies on the sharded path too.
  ThreadPool pool(2);
  ShardedScanExecutor exec(3, &pool);
  EXPECT_FALSE(store->ScanClusters(q, {0, 0}, &exec).ok());
  Result<ScanResult> sharded = store->ScanClusters(q, {0, 1, 2, 3, 4}, &exec);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded->count, 500);
}

TEST(ClusterStoreTest, TotalMeasureMatchesTable) {
  Table t = SmallTable();
  Result<Table> tensor = t.BuildCountTensor({0});
  ASSERT_TRUE(tensor.ok());
  ClusterStoreOptions opts;
  opts.cluster_capacity = 2;
  Result<ClusterStore> store = ClusterStore::Build(*tensor, opts);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->TotalMeasure(), 4);
}

// S1 pin: specialized scan profiles must not change the aggregate they do
// produce, and must zero the ones they skip.
TEST(ClusterStoreTest, ScanProfilesPinAnswers) {
  Table t = WideTable(800, 23);
  ClusterStoreOptions opts;
  opts.cluster_capacity = 100;
  Result<ClusterStore> store = ClusterStore::Build(t, opts);
  ASSERT_TRUE(store.ok());
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount).Where(0, 10, 70).Build();
  std::vector<uint32_t> ids = {0, 2, 5};
  Result<ScanResult> all = store->ScanClusters(q, ids);
  ASSERT_TRUE(all.ok());
  Result<ScanResult> count =
      store->ScanClusters(q, ids, nullptr, nullptr, ScanProfile::kCount);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->count, all->count);
  EXPECT_EQ(count->sum, 0);
  EXPECT_EQ(count->sum_squares, 0);
  Result<ScanResult> sum =
      store->ScanClusters(q, ids, nullptr, nullptr, ScanProfile::kSum);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->sum, all->sum);
  EXPECT_EQ(sum->sum_squares, 0);
}

// S2: totals are cached at build time, not recomputed per call; appending
// through Build keeps them in sync with the table.
TEST(ClusterStoreTest, CachedTotalsMatchWalk) {
  Table t = WideTable(1234, 29);
  ClusterStoreOptions opts;
  opts.cluster_capacity = 100;
  Result<ClusterStore> store = ClusterStore::Build(t, opts);
  ASSERT_TRUE(store.ok());
  size_t rows = 0;
  int64_t measure = 0;
  store->ForEachCluster([&](const Cluster& c) {
    rows += c.num_rows();
    for (size_t i = 0; i < c.num_rows(); ++i) measure += c.measure(i);
  });
  EXPECT_EQ(store->TotalRows(), rows);
  EXPECT_EQ(store->TotalMeasure(), measure);
  EXPECT_EQ(store->TotalRows(), 1234u);
}

// ------------------------------------------------------- MappedStoreFile --

class MappedStoreTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    std::string p = ::testing::TempDir() + "fedaqp_mapped_" + name + ".bin";
    std::remove(p.c_str());
    paths_.push_back(p);
    return p;
  }
  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }
  std::vector<std::string> paths_;
};

TEST_F(MappedStoreTest, RoundTripPreservesEveryAnswer) {
  Table t = WideTable(2500, 31);
  for (ClusterLayout layout :
       {ClusterLayout::kSequential, ClusterLayout::kSortedByFirstDim,
        ClusterLayout::kShuffled}) {
    ClusterStoreOptions opts;
    opts.cluster_capacity = 128;
    opts.layout = layout;
    Result<ClusterStore> built = ClusterStore::Build(t, opts);
    ASSERT_TRUE(built.ok());
    std::string path =
        Path("roundtrip_" + std::to_string(static_cast<int>(layout)));
    ASSERT_TRUE(built->SaveMapped(path).ok());

    Result<ClusterStore> mapped = ClusterStore::OpenMapped(path);
    ASSERT_TRUE(mapped.ok());
    EXPECT_TRUE(mapped->mapped());
    EXPECT_GT(mapped->MappedBytes(), 0u);
    EXPECT_EQ(mapped->num_clusters(), built->num_clusters());
    EXPECT_EQ(mapped->TotalRows(), built->TotalRows());
    EXPECT_EQ(mapped->TotalMeasure(), built->TotalMeasure());
    EXPECT_TRUE(mapped->schema() == built->schema());
    for (size_t c = 0; c < built->num_clusters(); ++c) {
      EXPECT_EQ(mapped->ClusterRows(c), built->ClusterRows(c));
    }

    Rng rng(41);
    ScanScratch scratch;
    for (int trial = 0; trial < 10; ++trial) {
      const Value lo = rng.UniformInt(0, 80);
      const Value hi = rng.UniformInt(lo, 99);
      for (Aggregation agg :
           {Aggregation::kCount, Aggregation::kSum,
            Aggregation::kSumSquares}) {
        RangeQuery q = RangeQueryBuilder(agg).Where(0, lo, hi).Build();
        EXPECT_EQ(mapped->EvaluateExact(q), built->EvaluateExact(q));
        const size_t c = static_cast<size_t>(
            rng.UniformU64(built->num_clusters()));
        ScanResult resident = built->ScanCluster(c, q);
        ScanResult decoded = mapped->ScanCluster(c, q, ScanProfile::kAll,
                                                 &scratch);
        EXPECT_EQ(resident.count, decoded.count);
        EXPECT_EQ(resident.sum, decoded.sum);
        EXPECT_EQ(resident.sum_squares, decoded.sum_squares);
      }
    }

    // Materialized clusters match the resident originals row for row.
    size_t idx = 0;
    mapped->ForEachCluster([&](const Cluster& mc) {
      const Cluster& rc = built->cluster(idx++);
      ASSERT_EQ(mc.num_rows(), rc.num_rows());
      for (size_t i = 0; i < rc.num_rows(); ++i) {
        for (size_t d = 0; d < rc.num_dims(); ++d) {
          EXPECT_EQ(mc.at(i, d), rc.at(i, d));
        }
        EXPECT_EQ(mc.measure(i), rc.measure(i));
      }
      for (size_t d = 0; d < rc.num_dims(); ++d) {
        EXPECT_EQ(mc.MinValue(d), rc.MinValue(d));
        EXPECT_EQ(mc.MaxValue(d), rc.MaxValue(d));
      }
    });
    EXPECT_EQ(idx, built->num_clusters());
  }
}

TEST_F(MappedStoreTest, CompressionShrinksSmallDomains) {
  // Two dims with domains <= 200 and measures <= 1000 pack into 1-2 bytes
  // per value vs 8 raw — the file must be well under half the raw size.
  Table t = WideTable(4000, 37);
  ClusterStoreOptions opts;
  opts.cluster_capacity = 256;
  Result<ClusterStore> built = ClusterStore::Build(t, opts);
  ASSERT_TRUE(built.ok());
  std::string path = Path("compression");
  ASSERT_TRUE(built->SaveMapped(path).ok());
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  ASSERT_TRUE(in.good());
  const size_t file_size = static_cast<size_t>(in.tellg());
  const size_t raw_size = 4000 * 3 * sizeof(int64_t);
  EXPECT_LT(file_size, raw_size / 2);
}

TEST_F(MappedStoreTest, LoadClusterStoreAutoDetectsMappedFormat) {
  Table t = WideTable(600, 43);
  ClusterStoreOptions opts;
  opts.cluster_capacity = 100;
  Result<ClusterStore> built = ClusterStore::Build(t, opts);
  ASSERT_TRUE(built.ok());
  std::string path = Path("autodetect");
  ASSERT_TRUE(built->SaveMapped(path).ok());
  Result<ClusterStore> loaded = LoadClusterStore(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->mapped());
  RangeQuery q = RangeQueryBuilder(Aggregation::kSum).Where(0, 5, 60).Build();
  EXPECT_EQ(loaded->EvaluateExact(q), built->EvaluateExact(q));
  // The legacy resident format still loads through the same entry point.
  std::string legacy = Path("legacy");
  ASSERT_TRUE(SaveClusterStore(*built, legacy).ok());
  Result<ClusterStore> legacy_loaded = LoadClusterStore(legacy);
  ASSERT_TRUE(legacy_loaded.ok());
  EXPECT_FALSE(legacy_loaded->mapped());
  EXPECT_EQ(legacy_loaded->EvaluateExact(q), built->EvaluateExact(q));
}

TEST_F(MappedStoreTest, RejectsTruncatedFiles) {
  Table t = WideTable(500, 47);
  ClusterStoreOptions opts;
  opts.cluster_capacity = 100;
  Result<ClusterStore> built = ClusterStore::Build(t, opts);
  ASSERT_TRUE(built.ok());
  std::string path = Path("truncate_src");
  ASSERT_TRUE(built->SaveMapped(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 64u);
  // Cut at several depths: inside the header, the directory, the data.
  for (size_t keep : {size_t{6}, size_t{40}, bytes.size() / 2,
                      bytes.size() - 1}) {
    std::string cut = Path("truncate_" + std::to_string(keep));
    std::ofstream out(cut, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_FALSE(ClusterStore::OpenMapped(cut).ok()) << "keep=" << keep;
  }
}

TEST_F(MappedStoreTest, RejectsCorruptedFiles) {
  Table t = WideTable(500, 53);
  ClusterStoreOptions opts;
  opts.cluster_capacity = 100;
  Result<ClusterStore> built = ClusterStore::Build(t, opts);
  ASSERT_TRUE(built.ok());
  std::string path = Path("corrupt_src");
  ASSERT_TRUE(built->SaveMapped(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());

  auto write_variant = [&](const std::string& name,
                           const std::vector<char>& b) {
    std::string p = Path(name);
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(b.data(), static_cast<std::streamsize>(b.size()));
    out.close();
    return p;
  };

  // Bad magic.
  std::vector<char> bad_magic = bytes;
  bad_magic[0] ^= 0x5A;
  EXPECT_FALSE(ClusterStore::OpenMapped(write_variant("magic", bad_magic)).ok());

  // Unsupported version.
  std::vector<char> bad_version = bytes;
  bad_version[4] = 99;
  EXPECT_FALSE(
      ClusterStore::OpenMapped(write_variant("version", bad_version)).ok());

  // Header total_rows inconsistent with the per-cluster directory.
  std::vector<char> bad_rows = bytes;
  bad_rows[24] ^= 0x01;  // total_rows low byte (offset 8+8+8)
  EXPECT_FALSE(ClusterStore::OpenMapped(write_variant("rows", bad_rows)).ok());

  // Flipping a directory byte must never crash: either the open fails
  // validation or the decoded answers change in a bounded way — we only
  // require no UB here, checked by running a scan if it opens.
  Rng rng(59);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<char> mutated = bytes;
    const size_t pos = 8 + static_cast<size_t>(
        rng.UniformU64(std::min<size_t>(mutated.size() - 8, 400)));
    mutated[pos] ^= static_cast<char>(1 + rng.UniformU64(255));
    Result<ClusterStore> opened =
        ClusterStore::OpenMapped(write_variant("fuzz" + std::to_string(trial),
                                               mutated));
    if (opened.ok()) {
      RangeQuery q =
          RangeQueryBuilder(Aggregation::kSum).Where(0, 0, 99).Build();
      (void)opened->EvaluateExact(q);
    }
  }

  // Missing file.
  EXPECT_EQ(ClusterStore::OpenMapped(Path("missing")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(MappedStoreTest, BytesMappedAccountingRisesAndFalls) {
  Table t = WideTable(800, 61);
  ClusterStoreOptions opts;
  opts.cluster_capacity = 100;
  Result<ClusterStore> built = ClusterStore::Build(t, opts);
  ASSERT_TRUE(built.ok());
  std::string path = Path("accounting");
  ASSERT_TRUE(built->SaveMapped(path).ok());
  const uint64_t before = MappedStoreFile::TotalMappedBytes();
  {
    Result<ClusterStore> mapped = ClusterStore::OpenMapped(path);
    ASSERT_TRUE(mapped.ok());
    EXPECT_EQ(MappedStoreFile::TotalMappedBytes(),
              before + mapped->MappedBytes());
  }
  EXPECT_EQ(MappedStoreFile::TotalMappedBytes(), before);
}

}  // namespace
}  // namespace fedaqp
