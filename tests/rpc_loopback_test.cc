// End-to-end loopback federation tests: providers hosted by
// RpcProviderServer on 127.0.0.1, coordinated through RemoteEndpoint —
// answers must be bit-identical to the in-process engine, real wire
// bytes must equal SimNetwork's charges, stateless retries must be
// invisible, and errors must travel as Status, never as crashes.

#include <chrono>
#include <memory>
#include <thread>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/query_engine.h"
#include "federation/orchestrator.h"
#include "rpc/remote_endpoint.h"
#include "rpc/server.h"
#include "rpc/transport.h"
#include "rpc/wire.h"
#include "workload/datagen.h"

namespace fedaqp {
namespace {

std::unique_ptr<DataProvider> MakeProvider(size_t rows, uint64_t seed,
                                           size_t n_min = 4) {
  SyntheticConfig cfg;
  cfg.rows = rows;
  cfg.seed = seed;
  cfg.dims = {{"a", 200, DistributionKind::kNormal, 0.5},
              {"b", 100, DistributionKind::kZipf, 1.2}};
  Result<Table> t = GenerateSynthetic(cfg);
  EXPECT_TRUE(t.ok());
  Result<Table> tensor = t->BuildCountTensor({0, 1});
  EXPECT_TRUE(tensor.ok());
  DataProvider::Options popts;
  popts.storage.cluster_capacity = 128;
  popts.storage.layout = ClusterLayout::kShuffled;
  popts.storage.shuffle_seed = seed;
  popts.n_min = n_min;
  popts.seed = seed * 3 + 1;
  Result<std::unique_ptr<DataProvider>> p = DataProvider::Create(*tensor, popts);
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

FederationConfig BaseConfig() {
  FederationConfig config;
  config.per_query_budget = {1.0, 1e-3};
  config.sampling_rate = 0.3;
  config.total_xi = 1e6;
  config.total_psi = 1e3;
  config.seed = 77;
  return config;
}

/// Two providers, their loopback servers, and remote endpoints to them.
/// The same provider instances back both the in-process and the remote
/// path: all per-query randomness is keyed by (provider seed, session
/// nonce), so runs do not perturb each other.
class RpcLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    providers_.push_back(MakeProvider(20000, 3));
    providers_.push_back(MakeProvider(30000, 5));
    for (auto& p : providers_) {
      Result<std::unique_ptr<RpcProviderServer>> server =
          RpcProviderServer::Start(p.get());
      ASSERT_TRUE(server.ok()) << server.status().ToString();
      servers_.push_back(std::move(server).value());
    }
  }

  std::vector<DataProvider*> Ptrs() {
    std::vector<DataProvider*> out;
    for (auto& p : providers_) out.push_back(p.get());
    return out;
  }

  Result<std::vector<std::shared_ptr<ProviderEndpoint>>> ConnectRemote() {
    std::vector<std::string> host_ports;
    for (auto& s : servers_) {
      host_ports.push_back("127.0.0.1:" + std::to_string(s->port()));
    }
    return RemoteEndpoint::ConnectAll(host_ports);
  }

  std::vector<RangeQuery> Workload() const {
    return {
        RangeQueryBuilder(Aggregation::kSum).Where(0, 20, 180).Build(),
        RangeQueryBuilder(Aggregation::kCount).Where(0, 10, 150).Build(),
        RangeQueryBuilder(Aggregation::kCount).Where(0, 5, 6).Build(),
        RangeQueryBuilder(Aggregation::kSumSquares)
            .Where(0, 0, 199)
            .Where(1, 10, 90)
            .Build(),
    };
  }

  std::vector<std::unique_ptr<DataProvider>> providers_;
  std::vector<std::unique_ptr<RpcProviderServer>> servers_;
};

TEST_F(RpcLoopbackTest, HandshakePublishesEndpointInfo) {
  Result<std::vector<std::shared_ptr<ProviderEndpoint>>> remote =
      ConnectRemote();
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  for (size_t i = 0; i < remote->size(); ++i) {
    const EndpointInfo& info = (*remote)[i]->info();
    EXPECT_EQ(info.name, providers_[i]->name());
    EXPECT_TRUE(info.schema == providers_[i]->store().schema());
    EXPECT_EQ(info.cluster_capacity,
              providers_[i]->options().storage.cluster_capacity);
    EXPECT_EQ(info.n_min, providers_[i]->options().n_min);
  }
}

TEST_F(RpcLoopbackTest, LoopbackFederationIsBitIdenticalToInProcess) {
  Result<std::vector<std::shared_ptr<ProviderEndpoint>>> remote =
      ConnectRemote();
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  Result<QueryOrchestrator> local =
      QueryOrchestrator::Create(Ptrs(), BaseConfig());
  Result<QueryOrchestrator> over_wire =
      QueryOrchestrator::CreateFromEndpoints(std::move(remote).value(),
                                             BaseConfig());
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();

  for (const RangeQuery& q : Workload()) {
    Result<QueryResponse> a = local->Execute(q);
    Result<QueryResponse> b = over_wire->Execute(q);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    // Bit-identical, not approximately equal: the wire codec moves raw
    // double bits and the noise streams are keyed identically.
    EXPECT_EQ(a->estimate, b->estimate) << q.ToString(local->schema());
    EXPECT_EQ(a->stderr_estimate, b->stderr_estimate);
    EXPECT_EQ(a->approximated, b->approximated);
    EXPECT_EQ(a->allocation, b->allocation);
    EXPECT_EQ(a->spent.epsilon, b->spent.epsilon);
    EXPECT_EQ(a->spent.delta, b->spent.delta);
    // Deterministic work counters and the simulated network agree;
    // compute_seconds is wall time and naturally differs.
    EXPECT_EQ(a->breakdown.clusters_scanned, b->breakdown.clusters_scanned);
    EXPECT_EQ(a->breakdown.rows_scanned, b->breakdown.rows_scanned);
    EXPECT_EQ(a->breakdown.metadata_lookups, b->breakdown.metadata_lookups);
    EXPECT_EQ(a->breakdown.network_bytes, b->breakdown.network_bytes);
    EXPECT_EQ(a->breakdown.network_messages, b->breakdown.network_messages);

    Result<QueryResponse> ea = local->ExecuteExact(q);
    Result<QueryResponse> eb = over_wire->ExecuteExact(q);
    ASSERT_TRUE(ea.ok());
    ASSERT_TRUE(eb.ok());
    EXPECT_EQ(ea->estimate, eb->estimate);
  }
  // Ledger state: both accountants saw the same admitted sequence.
  EXPECT_EQ(local->accountant().spent().epsilon,
            over_wire->accountant().spent().epsilon);
  EXPECT_EQ(local->accountant().spent().delta,
            over_wire->accountant().spent().delta);
  EXPECT_EQ(local->accountant().num_charges(),
            over_wire->accountant().num_charges());
}

TEST_F(RpcLoopbackTest, BatchedEnginePathIsBitIdenticalOverLoopback) {
  Result<std::vector<std::shared_ptr<ProviderEndpoint>>> remote =
      ConnectRemote();
  ASSERT_TRUE(remote.ok());

  QueryEngineOptions opts;
  opts.protocol = BaseConfig();
  opts.protocol.num_threads = 4;  // Pool pipelining must survive the wire.
  opts.analysts = {{"ana", 50.0, 0.5}, {"bob", 2.5, 0.1}};

  Result<std::unique_ptr<QueryEngine>> local_engine =
      QueryEngine::Create(Ptrs(), opts);
  Result<std::unique_ptr<QueryEngine>> wire_engine =
      QueryEngine::Create(std::move(remote).value(), opts);
  ASSERT_TRUE(local_engine.ok());
  ASSERT_TRUE(wire_engine.ok()) << wire_engine.status().ToString();

  std::vector<AnalystQuery> batch;
  for (const RangeQuery& q : Workload()) {
    batch.push_back({"ana", q});
    batch.push_back({"bob", q});
  }
  batch.push_back({"mallory", Workload()[0]});  // unknown analyst

  std::vector<BatchOutcome> a = (*local_engine)->ExecuteBatch(batch);
  std::vector<BatchOutcome> b = (*wire_engine)->ExecuteBatch(batch);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status.code(), b[i].status.code()) << "entry " << i;
    if (a[i].ok() && b[i].ok()) {
      EXPECT_EQ(a[i].response.estimate, b[i].response.estimate)
          << "entry " << i;
      EXPECT_EQ(a[i].response.allocation, b[i].response.allocation);
    }
  }
  for (const std::string& analyst : {"ana", "bob"}) {
    Result<PrivacyBudget> sa = (*local_engine)->ledger().Spent(analyst);
    Result<PrivacyBudget> sb = (*wire_engine)->ledger().Spent(analyst);
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    EXPECT_EQ(sa->epsilon, sb->epsilon);
    EXPECT_EQ(sa->delta, sb->delta);
  }
}

TEST_F(RpcLoopbackTest, RealWireBytesEqualSimNetworkCharges) {
  Result<std::vector<std::shared_ptr<ProviderEndpoint>>> remote =
      ConnectRemote();
  ASSERT_TRUE(remote.ok());
  std::vector<RemoteEndpoint*> raw;
  for (auto& e : *remote) {
    raw.push_back(static_cast<RemoteEndpoint*>(e.get()));
  }
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::CreateFromEndpoints(std::move(remote).value(),
                                             BaseConfig());
  ASSERT_TRUE(orch.ok());

  // Baseline after the connect-time kInfo handshake (which SimNetwork,
  // modeling only the per-query protocol, deliberately does not charge).
  uint64_t base = 0;
  for (auto* e : raw) base += e->bytes_sent() + e->bytes_received();

  uint64_t charged = 0;
  for (const RangeQuery& q : Workload()) {
    Result<QueryResponse> resp = orch->Execute(q);
    ASSERT_TRUE(resp.ok());
    charged += resp->breakdown.network_bytes;
  }
  uint64_t moved = 0;
  uint64_t overhead = 0;
  for (auto* e : raw) {
    moved += e->bytes_sent() + e->bytes_received();
    overhead += e->batch_overhead_bytes();
  }
  // Sequential Execute() calls never coalesce, so the overhead term is
  // expected to be zero here — asserting it keeps the stronger claim
  // that a lone call's wire traffic is byte-identical to the unbatched
  // protocol.
  EXPECT_EQ(overhead, 0u);
  EXPECT_EQ(moved - base, charged + overhead);
}

TEST_F(RpcLoopbackTest, ExactFullScanIsIdempotentAndDrawsNoProviderRng) {
  Result<std::vector<std::shared_ptr<ProviderEndpoint>>> remote =
      ConnectRemote();
  ASSERT_TRUE(remote.ok());
  ProviderEndpoint* endpoint = (*remote)[0].get();

  RangeQuery q = RangeQueryBuilder(Aggregation::kSum).Where(0, 20, 180).Build();
  // Snapshot the provider's persistent stream: a stateless scan must not
  // advance it (Rng is a value type; the copy is an independent replica).
  Rng replica = *providers_[0]->rng();

  Result<ExactScanReply> first = endpoint->ExactFullScan(ExactScanRequest{q});
  Result<ExactScanReply> retry = endpoint->ExactFullScan(ExactScanRequest{q});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(first->value, retry->value);
  EXPECT_EQ(first->work.rows_scanned, retry->work.rows_scanned);
  EXPECT_EQ(first->value,
            static_cast<double>(providers_[0]->store().EvaluateExact(q)));

  // The provider's next private draw is unchanged by the two scans, so a
  // coordinator retrying ExactFullScan after a transport error cannot
  // skew any later query's noise.
  EXPECT_EQ(replica.NextU64(), providers_[0]->rng()->NextU64());
}

TEST_F(RpcLoopbackTest, SessionErrorsTravelAsStatusAndConnectionSurvives) {
  Result<std::vector<std::shared_ptr<ProviderEndpoint>>> remote =
      ConnectRemote();
  ASSERT_TRUE(remote.ok());
  ProviderEndpoint* endpoint = (*remote)[0].get();

  // PublishSummary without a Cover session: refused provider-side, the
  // refusal crosses the wire as a Status, and the connection stays usable.
  SummaryRequest req;
  req.query_id = 424242;
  req.eps_allocation = 0.1;
  Result<SummaryReply> summary = endpoint->PublishSummary(req);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kFailedPrecondition);

  // An invalid query is validated server-side (raw wire clients bypass
  // the coordinator's validation).
  RangeQuery bad = RangeQueryBuilder(Aggregation::kCount)
                       .Where(99, 0, 1)
                       .Build();
  Result<ExactScanReply> scan = endpoint->ExactFullScan(ExactScanRequest{bad});
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kOutOfRange);

  CoverRequest cover;
  cover.query_id = 1;
  cover.session_nonce = 9;
  cover.query = RangeQueryBuilder(Aggregation::kCount).Where(0, 0, 199).Build();
  Result<CoverReply> reply = endpoint->Cover(cover);
  EXPECT_TRUE(reply.ok()) << reply.status().ToString();
  endpoint->EndQuery(1);
}

TEST_F(RpcLoopbackTest, IndependentCoordinatorsDoNotCollideOnSessionIds) {
  // Every coordinator numbers its queries from 1; the server must
  // namespace sessions per connection so two coordinators using the
  // same raw query_id get independent sessions with their own noise
  // streams.
  Result<std::shared_ptr<RemoteEndpoint>> c1 =
      RemoteEndpoint::Connect("127.0.0.1", servers_[0]->port());
  Result<std::shared_ptr<RemoteEndpoint>> c2 =
      RemoteEndpoint::Connect("127.0.0.1", servers_[0]->port());
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());

  RangeQuery q = RangeQueryBuilder(Aggregation::kSum).Where(0, 20, 180).Build();
  CoverRequest cover;
  cover.query_id = 1;
  cover.query = q;
  cover.session_nonce = 1111;
  ASSERT_TRUE((*c1)->Cover(cover).ok());
  cover.session_nonce = 2222;  // Same raw id, different coordinator seed.
  ASSERT_TRUE((*c2)->Cover(cover).ok());

  // If c2's Cover had overwritten c1's session, c1's summary would draw
  // from c2's nonce stream; both must succeed and differ (distinct
  // Laplace draws on the same underlying statistics).
  SummaryRequest sreq;
  sreq.query_id = 1;
  sreq.eps_allocation = 0.1;
  Result<SummaryReply> s1 = (*c1)->PublishSummary(sreq);
  Result<SummaryReply> s2 = (*c2)->PublishSummary(sreq);
  ASSERT_TRUE(s1.ok()) << s1.status().ToString();
  ASSERT_TRUE(s2.ok()) << s2.status().ToString();
  EXPECT_NE(s1->summary.noisy_avg_r, s2->summary.noisy_avg_r);

  // c2 releasing ITS query 1 must not touch c1's session.
  (*c2)->EndQuery(1);
  Result<SummaryReply> again = (*c1)->PublishSummary(sreq);
  EXPECT_TRUE(again.ok()) << again.status().ToString();
  (*c1)->EndQuery(1);
}

TEST_F(RpcLoopbackTest, SessionsAreReleasedWhenTheConnectionDies) {
  {
    Result<std::shared_ptr<RemoteEndpoint>> client =
        RemoteEndpoint::Connect("127.0.0.1", servers_[0]->port());
    ASSERT_TRUE(client.ok());
    CoverRequest cover;
    cover.query_id = 7;
    cover.session_nonce = 42;
    cover.query =
        RangeQueryBuilder(Aggregation::kCount).Where(0, 0, 199).Build();
    ASSERT_TRUE((*client)->Cover(cover).ok());
    EXPECT_EQ(servers_[0]->num_open_sessions(), 1u);
    // The coordinator "crashes": connection drops without EndQuery.
  }
  // The handler notices the close asynchronously; poll briefly.
  for (int i = 0; i < 200 && servers_[0]->num_open_sessions() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(servers_[0]->num_open_sessions(), 0u);
}

TEST(RpcSessionCapTest, RunawayCoverWithoutEndQueryIsRefusedAtTheCap) {
  std::unique_ptr<DataProvider> provider = MakeProvider(20000, 3);
  RpcServerOptions opts;
  opts.max_sessions_per_connection = 4;
  Result<std::unique_ptr<RpcProviderServer>> server =
      RpcProviderServer::Start(provider.get(), opts);
  ASSERT_TRUE(server.ok());
  Result<std::shared_ptr<RemoteEndpoint>> client =
      RemoteEndpoint::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());

  CoverRequest cover;
  cover.session_nonce = 5;
  cover.query = RangeQueryBuilder(Aggregation::kCount).Where(0, 0, 199).Build();
  for (uint64_t id = 1; id <= 4; ++id) {
    cover.query_id = id;
    ASSERT_TRUE((*client)->Cover(cover).ok()) << "id " << id;
  }
  cover.query_id = 5;
  Result<CoverReply> refused = (*client)->Cover(cover);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  // Ending one frees a slot; the connection is still healthy.
  (*client)->EndQuery(1);
  EXPECT_TRUE((*client)->Cover(cover).ok());
}

TEST_F(RpcLoopbackTest, MalformedFramesGetErrorRepliesNotCrashes) {
  // A raw client speaking the frame layer directly.
  Result<TcpConnection> conn =
      TcpConnection::Connect("127.0.0.1", servers_[0]->port());
  ASSERT_TRUE(conn.ok());

  // Well-formed frame, truncated payload: the decoder must reject it and
  // the server must answer with an error frame on a still-healthy stream.
  ByteWriter payload;
  EncodeSummaryRequest(SummaryRequest{1, 0.5}, &payload);
  ByteWriter truncated;
  truncated.PutU64(123);  // half a SummaryRequest
  ASSERT_TRUE(conn->SendFrame(RpcMethod::kPublishSummary, truncated).ok());
  Result<RpcFrame> reply = conn->ReceiveFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->method, RpcMethod::kError);
  ByteReader reader(reply->payload);
  Status remote = Status::OK();
  ASSERT_TRUE(DecodeStatusPayload(&reader, &remote).ok());
  EXPECT_FALSE(remote.ok());

  // The same connection still serves well-formed requests afterwards.
  ASSERT_TRUE(conn->SendFrame(RpcMethod::kInfo, ByteWriter()).ok());
  Result<RpcFrame> info = conn->ReceiveFrame();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->method, RpcMethod::kInfo);

  // A client-sent error frame is a protocol breach: the server reports
  // and drops the connection.
  ByteWriter err;
  EncodeStatusPayload(Status::Internal("q"), &err);
  ASSERT_TRUE(conn->SendFrame(RpcMethod::kError, err).ok());
  Result<RpcFrame> breach = conn->ReceiveFrame();
  if (breach.ok()) {
    EXPECT_EQ(breach->method, RpcMethod::kError);
    // ...and then the stream ends.
    EXPECT_FALSE(conn->ReceiveFrame().ok());
  }
}

TEST_F(RpcLoopbackTest, StoppedServerPoisonsClientWithStatusNotCrash) {
  Result<std::vector<std::shared_ptr<ProviderEndpoint>>> remote =
      ConnectRemote();
  ASSERT_TRUE(remote.ok());
  ProviderEndpoint* endpoint = (*remote)[0].get();

  servers_[0]->Stop();
  RangeQuery q = RangeQueryBuilder(Aggregation::kCount).Where(0, 0, 199).Build();
  // ExactFullScan is the one auto-retrying call: it notices the break,
  // attempts its single reconnect (refused: nothing listens), and
  // surfaces the transport Status — never a crash, never a silent hang.
  Result<ExactScanReply> scan = endpoint->ExactFullScan(ExactScanRequest{q});
  EXPECT_FALSE(scan.ok());
  Result<ExactScanReply> again = endpoint->ExactFullScan(ExactScanRequest{q});
  EXPECT_FALSE(again.ok());

  // Sessionful calls must fail fast on the poisoned connection — they
  // are never auto-retried (replaying Cover would re-key the session's
  // noise stream).
  CoverRequest cover;
  cover.query_id = 1;
  cover.session_nonce = 9;
  cover.query = q;
  Result<CoverReply> refused = endpoint->Cover(cover);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RpcLoopbackTest, ExactFullScanReconnectsAcrossServerRestart) {
  Result<std::vector<std::shared_ptr<ProviderEndpoint>>> remote =
      ConnectRemote();
  ASSERT_TRUE(remote.ok());
  ProviderEndpoint* endpoint = (*remote)[0].get();

  RangeQuery q = RangeQueryBuilder(Aggregation::kSum).Where(0, 20, 180).Build();
  Result<ExactScanReply> before = endpoint->ExactFullScan(ExactScanRequest{q});
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // The provider restarts on the same port (a deploy, a crash+respawn).
  const uint16_t port = servers_[0]->port();
  servers_[0]->Stop();
  RpcServerOptions opts;
  opts.port = port;
  Result<std::unique_ptr<RpcProviderServer>> fresh =
      RpcProviderServer::Start(providers_[0].get(), opts);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  servers_[0] = std::move(fresh).value();

  // The idempotent scan heals transparently: discover the break,
  // reconnect once, retry — same answer, no caller involvement.
  Result<ExactScanReply> after = endpoint->ExactFullScan(ExactScanRequest{q});
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->value, before->value);
  EXPECT_EQ(after->work.rows_scanned, before->work.rows_scanned);

  // A successful reconnect heals the endpoint for sessionful traffic too
  // (fresh sessions on the new connection).
  CoverRequest cover;
  cover.query_id = 11;
  cover.session_nonce = 13;
  cover.query = q;
  Result<CoverReply> session = endpoint->Cover(cover);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  endpoint->EndQuery(11);
}

TEST(RpcIdleTimeoutTest, IdleConnectionsAreDisconnectedNotLeftPinningWorkers) {
  std::unique_ptr<DataProvider> provider = MakeProvider(20000, 3);
  RpcServerOptions opts;
  opts.idle_timeout_seconds = 0.2;
  Result<std::unique_ptr<RpcProviderServer>> server =
      RpcProviderServer::Start(provider.get(), opts);
  ASSERT_TRUE(server.ok());
  Result<TcpConnection> conn =
      TcpConnection::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(conn.ok());

  // Live traffic is served normally...
  ASSERT_TRUE(conn->SendFrame(RpcMethod::kInfo, ByteWriter()).ok());
  ASSERT_TRUE(conn->ReceiveFrame().ok());

  // ...but a silent peer is dropped once the idle timeout expires: we
  // either see the server's timeout error frame followed by EOF, or the
  // bare close.
  Result<RpcFrame> dropped = conn->ReceiveFrame();
  if (dropped.ok()) {
    EXPECT_EQ(dropped->method, RpcMethod::kError);
    EXPECT_FALSE(conn->ReceiveFrame().ok());
  }
}

TEST(RpcConnectTest, ConnectAllRejectsMalformedAddresses) {
  for (const std::string& bad :
       {std::string("localhost"), std::string(":80"), std::string("h:"),
        std::string("h:0"), std::string("h:70000"), std::string("h:12x")}) {
    Result<std::vector<std::shared_ptr<ProviderEndpoint>>> endpoints =
        RemoteEndpoint::ConnectAll({bad});
    EXPECT_FALSE(endpoints.ok()) << bad;
  }
}

TEST(RpcConnectTest, ConnectToDeadPortFailsWithStatus) {
  // Bind-then-close to obtain a port nothing listens on.
  Result<TcpListener> listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  uint16_t port = listener->port();
  listener->Shutdown();
  Result<std::shared_ptr<RemoteEndpoint>> endpoint =
      RemoteEndpoint::Connect("127.0.0.1", port);
  EXPECT_FALSE(endpoint.ok());
}

}  // namespace
}  // namespace fedaqp
