// Tests for the workload substrate: distributions, data generators, query
// generation and the metric runner.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/math.h"
#include "common/rng.h"
#include "core/federation.h"
#include "workload/datagen.h"
#include "workload/distributions.h"
#include "workload/query_gen.h"
#include "workload/workload.h"

namespace fedaqp {
namespace {

// --------------------------------------------------------- Distributions --

TEST(DistributionTest, UniformCoversDomain) {
  ValueDistribution dist(DistributionKind::kUniform, 10, 0.0);
  Rng rng(3);
  std::set<Value> seen;
  for (int i = 0; i < 2000; ++i) {
    Value v = dist.Sample(&rng);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 10);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(DistributionTest, ZipfIsHeavilySkewed) {
  ValueDistribution dist(DistributionKind::kZipf, 100, 1.5);
  Rng rng(5);
  size_t first = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (dist.Sample(&rng) == 0) ++first;
  }
  // Rank-1 mass of Zipf(1.5, 100) is ~1/zeta ~ 0.38.
  EXPECT_GT(static_cast<double>(first) / n, 0.3);
}

TEST(DistributionTest, NormalCentersWhereAsked) {
  ValueDistribution dist(DistributionKind::kNormal, 100, 0.3);
  Rng rng(7);
  RunningStats st;
  for (int i = 0; i < 20000; ++i) {
    Value v = dist.Sample(&rng);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
    st.Add(static_cast<double>(v));
  }
  EXPECT_NEAR(st.mean(), 30.0, 2.0);
}

TEST(DistributionTest, CategoricalSkewedPutsMassOnHead) {
  ValueDistribution dist(DistributionKind::kCategoricalSkewed, 10, 0.0);
  Rng rng(9);
  size_t head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (dist.Sample(&rng) < 2) ++head;  // head = 20% of values
  }
  EXPECT_NEAR(static_cast<double>(head) / n, 0.8, 0.02);
}

// --------------------------------------------------------------- Datagen --

TEST(DatagenTest, GenerateSyntheticRespectsSchemaAndRows) {
  SyntheticConfig cfg;
  cfg.rows = 500;
  cfg.seed = 11;
  cfg.dims = {{"x", 10, DistributionKind::kUniform, 0.0},
              {"y", 20, DistributionKind::kZipf, 1.2}};
  Result<Table> t = GenerateSynthetic(cfg);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 500u);
  EXPECT_EQ(t->schema().num_dims(), 2u);
  EXPECT_EQ(t->TotalMeasure(), 500);
  EXPECT_FALSE(GenerateSynthetic(SyntheticConfig{}).ok());  // no dims
}

TEST(DatagenTest, GenerationIsDeterministicPerSeed) {
  SyntheticConfig cfg;
  cfg.rows = 100;
  cfg.seed = 13;
  cfg.dims = {{"x", 50, DistributionKind::kZipf, 1.1}};
  Result<Table> a = GenerateSynthetic(cfg);
  Result<Table> b = GenerateSynthetic(cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->num_rows(); ++i) {
    EXPECT_EQ(a->row(i).values, b->row(i).values);
  }
}

TEST(DatagenTest, CorrelatedModeLinksFirstTwoDims) {
  SyntheticConfig cfg;
  cfg.rows = 5000;
  cfg.seed = 17;
  cfg.correlate_first_two = true;
  cfg.dims = {{"x", 100, DistributionKind::kUniform, 0.0},
              {"y", 100, DistributionKind::kUniform, 0.0}};
  Result<Table> t = GenerateSynthetic(cfg);
  ASSERT_TRUE(t.ok());
  // y must track x within the jitter band.
  for (size_t i = 0; i < t->num_rows(); ++i) {
    EXPECT_NEAR(static_cast<double>(t->row(i).values[1]),
                static_cast<double>(t->row(i).values[0]), 2.0);
  }
}

TEST(DatagenTest, AdultPresetShapes) {
  SyntheticConfig cfg = AdultConfig(1000, 19);
  EXPECT_EQ(cfg.dims.size(), 15u);  // the paper's 15 dimensions
  Result<Table> t = GenerateSynthetic(cfg);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 1000u);
  for (size_t d : AdultTensorDims()) EXPECT_LT(d, cfg.dims.size());
}

TEST(DatagenTest, AmazonPresetShapes) {
  SyntheticConfig cfg = AmazonConfig(1000, 23);
  EXPECT_EQ(cfg.dims.size(), 6u);  // 3 natural + 3 synthetic
  for (size_t d : AmazonTensorDims()) EXPECT_LT(d, cfg.dims.size());
}

TEST(DatagenTest, FederatedTensorsPreserveTotalMeasure) {
  SyntheticConfig cfg;
  cfg.rows = 2000;
  cfg.seed = 29;
  cfg.dims = {{"x", 30, DistributionKind::kZipf, 1.3},
              {"y", 20, DistributionKind::kUniform, 0.0},
              {"z", 10, DistributionKind::kUniform, 0.0}};
  Result<std::vector<Table>> parts = GenerateFederatedTensors(cfg, {0, 1}, 4);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 4u);
  int64_t total = 0;
  for (const auto& p : *parts) total += p.TotalMeasure();
  EXPECT_EQ(total, 2000);
}

// ------------------------------------------------------------- QueryGen --

TEST(QueryGenTest, GeneratesValidQueries) {
  Schema s;
  ASSERT_TRUE(s.AddDimension("a", 100).ok());
  ASSERT_TRUE(s.AddDimension("b", 50).ok());
  ASSERT_TRUE(s.AddDimension("c", 10).ok());
  QueryGenOptions opts;
  opts.num_dims = 2;
  RandomQueryGenerator gen(s, opts);
  for (int i = 0; i < 50; ++i) {
    Result<RangeQuery> q = gen.Next();
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q->num_constrained_dims(), 2u);
    EXPECT_TRUE(q->Validate(s).ok());
  }
}

TEST(QueryGenTest, RejectsBadOptions) {
  Schema s;
  ASSERT_TRUE(s.AddDimension("a", 100).ok());
  QueryGenOptions too_many;
  too_many.num_dims = 5;
  EXPECT_FALSE(RandomQueryGenerator(s, too_many).Next().ok());
  QueryGenOptions bad_width;
  bad_width.num_dims = 1;
  bad_width.min_width_fraction = 0.9;
  bad_width.max_width_fraction = 0.5;
  EXPECT_FALSE(RandomQueryGenerator(s, bad_width).Next().ok());
}

TEST(QueryGenTest, WorkloadHonoursAdmissionPredicate) {
  Schema s;
  ASSERT_TRUE(s.AddDimension("a", 100).ok());
  QueryGenOptions opts;
  opts.num_dims = 1;
  RandomQueryGenerator gen(s, opts);
  Result<std::vector<RangeQuery>> wl = gen.Workload(
      20, [](const RangeQuery& q) { return q.ranges()[0].lo >= 10; });
  ASSERT_TRUE(wl.ok());
  EXPECT_EQ(wl->size(), 20u);
  for (const auto& q : *wl) EXPECT_GE(q.ranges()[0].lo, 10);
}

TEST(QueryGenTest, ImpossiblePredicateFailsGracefully) {
  Schema s;
  ASSERT_TRUE(s.AddDimension("a", 100).ok());
  QueryGenOptions opts;
  opts.num_dims = 1;
  RandomQueryGenerator gen(s, opts);
  Result<std::vector<RangeQuery>> wl =
      gen.Workload(5, [](const RangeQuery&) { return false; });
  EXPECT_EQ(wl.status().code(), StatusCode::kFailedPrecondition);
}

// -------------------------------------------------------------- Workload --

TEST(WorkloadRunnerTest, MeasuresErrorAndSpeedup) {
  SyntheticConfig cfg;
  cfg.rows = 15000;
  cfg.seed = 31;
  cfg.dims = {{"a", 60, DistributionKind::kNormal, 0.5},
              {"b", 40, DistributionKind::kZipf, 1.2},
              {"c", 30, DistributionKind::kUniform, 0.0}};
  Result<std::vector<Table>> parts =
      GenerateFederatedTensors(cfg, {0, 1, 2}, 4);
  ASSERT_TRUE(parts.ok());
  FederationOptions fopts;
  fopts.cluster_capacity = 128;
  fopts.n_min = 4;
  fopts.protocol.sampling_rate = 0.25;
  fopts.protocol.per_query_budget = {2.0, 1e-3};
  fopts.protocol.total_xi = 1e6;
  fopts.protocol.total_psi = 1e3;
  Result<std::unique_ptr<Federation>> fed =
      Federation::Open(std::move(parts).value(), fopts);
  ASSERT_TRUE(fed.ok());

  QueryGenOptions qopts;
  qopts.num_dims = 2;
  qopts.seed = 37;
  RandomQueryGenerator gen((*fed)->schema(), qopts);
  Result<std::vector<RangeQuery>> queries = gen.Workload(10);
  ASSERT_TRUE(queries.ok());

  // Need direct orchestrator access: run through the facade's providers.
  FederationConfig config = fopts.protocol;
  Result<QueryOrchestrator> orch =
      QueryOrchestrator::Create((*fed)->provider_ptrs(), config);
  ASSERT_TRUE(orch.ok());
  Result<std::vector<QueryMeasurement>> results =
      RunWorkload(&orch.value(), *queries);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 10u);
  for (const auto& m : *results) {
    EXPECT_GE(m.relative_error, 0.0);
    EXPECT_GT(m.exact_rows_scanned, 0u);
  }
  WorkloadMetrics metrics = Summarize(*results);
  EXPECT_EQ(metrics.queries, 10u);
  EXPECT_GE(metrics.mean_relative_error, 0.0);
  EXPECT_GT(metrics.mean_work_ratio, 1.0)
      << "approximation must scan fewer rows than the exact plan";
}

TEST(WorkloadRunnerTest, SummarizeEmptyIsZero) {
  WorkloadMetrics m = Summarize({});
  EXPECT_EQ(m.queries, 0u);
  EXPECT_EQ(m.mean_relative_error, 0.0);
}

}  // namespace
}  // namespace fedaqp
