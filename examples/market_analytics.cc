// Market analytics scenario (Sec. 3's NASDAQ example): exchanges hold
// per-stock order books; an analyst runs range aggregations over price and
// volume buckets. Demonstrates the two release modes (per-provider DP vs
// SMC single-noise) and the speed-up against plain-text execution.
//
//   ./market_analytics

#include <cstdio>

#include "core/fedaqp.h"

using namespace fedaqp;  // NOLINT: example brevity

namespace {

Result<std::vector<Table>> SynthesizeExchanges(size_t exchanges) {
  // Orders: price bucket x volume bucket x hour x venue.
  SyntheticConfig cfg;
  cfg.rows = 120000;
  cfg.seed = 1929;
  cfg.dims = {{"price_bucket", 200, DistributionKind::kZipf, 1.3},
              {"volume_bucket", 100, DistributionKind::kZipf, 1.5},
              {"hour", 7, DistributionKind::kNormal, 0.5},
              {"venue", 16, DistributionKind::kCategoricalSkewed, 0.0}};
  return GenerateFederatedTensors(cfg, {0, 1, 2, 3}, exchanges);
}

std::unique_ptr<Federation> OpenWithMode(ReleaseMode mode) {
  Result<std::vector<Table>> parts = SynthesizeExchanges(4);
  if (!parts.ok()) return nullptr;
  FederationOptions opts;
  opts.cluster_capacity = 512;
  opts.n_min = 5;
  opts.protocol.per_query_budget = {1.0, 1e-3};
  opts.protocol.sampling_rate = 0.1;
  opts.protocol.mode = mode;
  opts.protocol.total_xi = 1000.0;
  opts.protocol.total_psi = 1.0;
  opts.seed = 55;
  Result<std::unique_ptr<Federation>> fed =
      Federation::Open(std::move(parts).value(), opts);
  return fed.ok() ? std::move(fed).value() : nullptr;
}

}  // namespace

int main() {
  std::unique_ptr<Federation> dp_fed = OpenWithMode(ReleaseMode::kLocalDp);
  std::unique_ptr<Federation> smc_fed = OpenWithMode(ReleaseMode::kSmc);
  if (!dp_fed || !smc_fed) {
    std::fprintf(stderr, "failed to open federations\n");
    return 1;
  }

  std::vector<RangeQuery> queries = {
      RangeQueryBuilder(Aggregation::kSum).Where(0, 0, 99).Build(),
      RangeQueryBuilder(Aggregation::kSum)
          .Where(0, 50, 180)
          .Where(1, 0, 40)
          .Build(),
      RangeQueryBuilder(Aggregation::kCount)
          .Where(1, 10, 90)
          .Where(2, 1, 5)
          .Build(),
      RangeQueryBuilder(Aggregation::kSum)
          .Where(0, 20, 150)
          .Where(3, 0, 7)
          .Build(),
  };

  std::printf("%-4s %-10s %12s %12s %9s %9s %10s\n", "Q", "mode", "exact",
              "private", "err%", "speedup", "net-bytes");
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (auto* fed : {dp_fed.get(), smc_fed.get()}) {
      const char* mode = (fed == dp_fed.get()) ? "local-DP" : "SMC";
      Result<QueryResponse> exact = fed->QueryExact(queries[qi]);
      Result<QueryResponse> priv = fed->Query(queries[qi]);
      if (!exact.ok() || !priv.ok()) continue;
      double speedup = priv->breakdown.TotalSeconds() > 0
                           ? exact->breakdown.TotalSeconds() /
                                 priv->breakdown.TotalSeconds()
                           : 0.0;
      std::printf("Q%-3zu %-10s %12.0f %12.0f %8.2f%% %8.2fx %10llu\n",
                  qi + 1, mode, exact->estimate, priv->estimate,
                  100.0 * RelativeError(exact->estimate, priv->estimate),
                  speedup,
                  static_cast<unsigned long long>(
                      priv->breakdown.network_bytes));
    }
  }
  std::printf("\nSMC mode trades a fixed network overhead for a single,\n"
              "tighter noise draw; local-DP mode stays cheapest on the wire\n"
              "but sums one noise draw per exchange (cf. Fig. 8).\n");
  return 0;
}
