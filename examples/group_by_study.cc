// GROUP-BY and derived aggregates (the paper's Sec. 7 extensions): a
// retail federation computes a private histogram of sales per region and
// the private average/stddev basket size, all charged against the analyst
// budget with parallel composition across disjoint buckets.
//
//   ./group_by_study

#include <cstdio>

#include "core/fedaqp.h"
#include "federation/derived.h"

using namespace fedaqp;  // NOLINT: example brevity

int main() {
  // Sales: region x product category x basket-size bucket.
  SyntheticConfig cfg;
  cfg.rows = 60000;
  cfg.seed = 99;
  cfg.dims = {{"region", 8, DistributionKind::kCategoricalSkewed, 0.0},
              {"category", 40, DistributionKind::kZipf, 1.3},
              {"basket", 30, DistributionKind::kNormal, 0.4}};
  Result<std::vector<Table>> parts = GenerateFederatedTensors(cfg, {0, 1, 2}, 4);
  if (!parts.ok()) return 1;

  std::vector<std::unique_ptr<DataProvider>> providers;
  std::vector<DataProvider*> ptrs;
  for (size_t i = 0; i < parts->size(); ++i) {
    DataProvider::Options popts;
    popts.storage.cluster_capacity = 256;
    popts.storage.layout = ClusterLayout::kShuffled;
    popts.n_min = 4;
    popts.seed = 4040 + i;
    popts.measure_cap = 128;
    Result<std::unique_ptr<DataProvider>> p =
        DataProvider::Create((*parts)[i], popts);
    if (!p.ok()) return 1;
    ptrs.push_back(p->get());
    providers.push_back(std::move(p).value());
  }

  FederationConfig config;
  config.per_query_budget = {1.0, 1e-3};
  config.sampling_rate = 0.3;
  config.total_xi = 50.0;
  config.total_psi = 0.05;
  Result<QueryOrchestrator> orch = QueryOrchestrator::Create(ptrs, config);
  if (!orch.ok()) return 1;

  // Private histogram: sales of popular categories, grouped by region.
  RangeQuery base = RangeQueryBuilder(Aggregation::kSum)
                        .Where(1, 0, 9)  // top categories
                        .Build();
  GroupByOptions gb;
  gb.group_dim = 0;
  Result<GroupByResult> hist = PrivateGroupBy(&orch.value(), base, gb);
  if (!hist.ok()) {
    std::fprintf(stderr, "group-by failed: %s\n",
                 hist.status().ToString().c_str());
    return 1;
  }
  std::printf("== private sales histogram by region ==\n");
  double exact_total = 0.0;
  for (const auto& bucket : hist->buckets) {
    RangeQuery exact_q = RangeQueryBuilder(Aggregation::kSum)
                             .Where(1, 0, 9)
                             .Where(0, bucket.group_value, bucket.group_value)
                             .Build();
    double exact = 0.0;
    for (auto* p : ptrs) {
      exact += static_cast<double>(p->store().EvaluateExact(exact_q));
    }
    exact_total += exact;
    int bars = static_cast<int>(bucket.estimate / 400.0);
    if (bars < 0) bars = 0;
    if (bars > 48) bars = 48;
    std::printf("region %lld | %-48.*s private=%7.0f exact=%7.0f\n",
                static_cast<long long>(bucket.group_value), bars,
                "################################################",
                bucket.estimate, exact);
  }
  std::printf("group-by privacy cost (parallel composition): eps=%.2f "
              "(one query's budget, not %zu)\n\n",
              hist->spent.epsilon, hist->buckets.size());

  // Derived aggregates over a broad range.
  RangeQuery range = RangeQueryBuilder(Aggregation::kSum)
                         .Where(2, 5, 25)
                         .Build();
  Result<DerivedResult> avg = PrivateAverage(&orch.value(), range);
  Result<DerivedResult> sd = PrivateStdDev(&orch.value(), range);
  if (!avg.ok() || !sd.ok()) return 1;
  std::printf("== derived aggregates (Sec. 7) ==\n");
  std::printf("AVG(Measure)    = %8.3f   (spent eps=%.2f across 2 queries)\n",
              avg->value, avg->spent.epsilon);
  std::printf("STDDEV(Measure) = %8.3f   (spent eps=%.2f across 3 queries)\n",
              sd->value, sd->spent.epsilon);

  const PrivacyAccountant& acct = orch->accountant();
  std::printf("\nanalyst budget: spent eps %.1f of %.1f across %zu "
              "private queries\n",
              acct.spent().epsilon, acct.total().epsilon, acct.num_charges());
  return 0;
}
