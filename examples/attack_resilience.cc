// Attack-resilience demo (Sec. 6.6): mounts the Naive-Bayes learning attack
// against the federation under several budget-composition strategies and
// shows that prediction accuracy stays at the random-guess floor.
//
//   ./attack_resilience

#include <cstdio>

#include "core/fedaqp.h"

using namespace fedaqp;  // NOLINT: example brevity

int main() {
  // A table whose QI column is strongly correlated with the sensitive
  // column: the worst case for privacy, best case for the attacker.
  SyntheticConfig cfg;
  cfg.rows = 6000;
  cfg.seed = 31337;
  cfg.correlate_first_two = true;
  cfg.dims = {{"diagnosis", 20, DistributionKind::kUniform, 0.0},   // SA
              {"medication", 20, DistributionKind::kUniform, 0.0},  // QI
              {"age_band", 8, DistributionKind::kUniform, 0.0}};
  Result<Table> raw = GenerateSynthetic(cfg);
  if (!raw.ok()) return 1;
  Result<Table> tensor = raw->BuildCountTensor({0, 1, 2});
  if (!tensor.ok()) return 1;
  Result<std::vector<Table>> parts = tensor->PartitionHorizontally(4);
  if (!parts.ok()) return 1;

  std::vector<std::unique_ptr<DataProvider>> providers;
  for (size_t i = 0; i < parts->size(); ++i) {
    DataProvider::Options popts;
    popts.storage.cluster_capacity = 64;
    popts.n_min = 3;
    popts.seed = 11 + i;
    Result<std::unique_ptr<DataProvider>> p =
        DataProvider::Create((*parts)[i], popts);
    if (!p.ok()) return 1;
    providers.push_back(std::move(p).value());
  }
  std::vector<DataProvider*> ptrs;
  for (auto& p : providers) ptrs.push_back(p.get());

  std::vector<EvalRow> eval = BuildEvalRows(*raw, 0, {1}, 2000);
  std::printf("attack target: |SA|=20 classes -> random guess = 5.0%%\n");
  std::printf("(QI is deterministically correlated with SA: a noiseless\n"
              " attacker would score near 100%%)\n\n");
  std::printf("%-12s %-6s %8s %14s %12s\n", "composition", "agg", "xi",
              "eps/query", "accuracy");

  FederationConfig base;
  base.sampling_rate = 0.3;

  for (AttackComposition comp :
       {AttackComposition::kSequential, AttackComposition::kAdvanced,
        AttackComposition::kCoalition}) {
    const char* comp_name =
        comp == AttackComposition::kSequential  ? "sequential"
        : comp == AttackComposition::kAdvanced ? "advanced"
                                               : "coalition";
    for (double xi : {1.0, 20.0}) {
      AttackConfig attack;
      attack.sa_dim = 0;
      attack.qi_dims = {1};
      attack.xi = xi;
      attack.psi = 1e-6;
      attack.composition = comp;
      attack.aggregation = Aggregation::kCount;
      Result<AttackResult> res = RunNbcAttack(ptrs, base, attack, eval);
      if (!res.ok()) {
        std::printf("%-12s %-6s %8.0f  attack failed: %s\n", comp_name,
                    "COUNT", xi, res.status().ToString().c_str());
        continue;
      }
      std::printf("%-12s %-6s %8.0f %14.6f %11.2f%%\n", comp_name, "COUNT",
                  xi, res->per_query_budget.epsilon, 100.0 * res->accuracy);
    }
  }
  std::printf("\nall accuracies sit near the 5%% random-guess floor: the\n"
              "interactive budget-limited interface defeats the classifier\n"
              "even with advanced composition or a colluding coalition.\n");
  return 0;
}
