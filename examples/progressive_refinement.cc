// Online aggregation demo: a dashboard asks for a quick first answer that
// refines round by round (progressive mode), then an error-bounded query
// that stops as soon as the released standard error is below a target —
// saving both scan work and privacy budget.
//
//   ./progressive_refinement

#include <cstdio>

#include "core/error_bounded.h"
#include "core/fedaqp.h"

using namespace fedaqp;  // NOLINT: example brevity

int main() {
  SyntheticConfig cfg;
  cfg.rows = 120000;
  cfg.seed = 2718;
  cfg.dims = {{"day", 365, DistributionKind::kUniform, 0.0},
              {"store", 120, DistributionKind::kZipf, 1.3},
              {"amount", 60, DistributionKind::kNormal, 0.4}};
  Result<std::vector<Table>> parts = GenerateFederatedTensors(cfg, {0, 1, 2}, 4);
  if (!parts.ok()) return 1;

  std::vector<std::unique_ptr<DataProvider>> providers;
  std::vector<DataProvider*> ptrs;
  for (size_t i = 0; i < parts->size(); ++i) {
    DataProvider::Options popts;
    popts.storage.cluster_capacity = 512;
    popts.storage.layout = ClusterLayout::kShuffled;
    popts.n_min = 8;
    popts.seed = 33 + i;
    Result<std::unique_ptr<DataProvider>> p =
        DataProvider::Create((*parts)[i], popts);
    if (!p.ok()) return 1;
    ptrs.push_back(p->get());
    providers.push_back(std::move(p).value());
  }

  RangeQuery q = RangeQueryBuilder(Aggregation::kSum)
                     .Where(0, 90, 270)   // Q2-Q3
                     .Where(2, 10, 50)
                     .Build();
  double truth = 0.0;
  for (auto* p : ptrs) {
    truth += static_cast<double>(p->store().EvaluateExact(q));
  }

  std::printf("== progressive refinement (online aggregation) ==\n");
  std::printf("true answer (for reference): %.0f\n\n", truth);
  ProgressiveOptions popts;
  popts.rounds = 5;
  popts.sampling_rate = 0.3;
  popts.budget = {2.0, 1e-3};
  Result<std::vector<ProgressiveRound>> rounds =
      ExecuteProgressive(ptrs, q, popts);
  if (!rounds.ok()) {
    std::fprintf(stderr, "progressive failed: %s\n",
                 rounds.status().ToString().c_str());
    return 1;
  }
  std::printf("%-6s %12s %10s %10s %12s %10s\n", "round", "estimate",
              "stderr", "err%", "eps spent", "clusters");
  for (const auto& r : *rounds) {
    std::printf("%-6zu %12.0f %10.0f %9.2f%% %12.3f %10zu\n", r.round,
                r.estimate, r.stderr_estimate,
                100.0 * RelativeError(truth, r.estimate), r.spent.epsilon,
                r.clusters_scanned);
  }

  std::printf("\n== error-bounded execution (stop at 30%% stderr) ==\n");
  ErrorBoundedOptions ebo;
  ebo.target_relative_stderr = 0.30;
  ebo.progressive = popts;
  Result<ErrorBoundedResult> eb = ExecuteErrorBounded(ptrs, q, ebo);
  if (!eb.ok()) return 1;
  std::printf("estimate %.0f +- %.0f after %zu round(s); target %s; "
              "eps spent %.3f of %.3f\n",
              eb->estimate, eb->stderr_estimate, eb->rounds_used,
              eb->met_target ? "met" : "NOT met", eb->spent.epsilon,
              popts.budget.epsilon);
  std::printf("\nstopping early returns unused estimate-release budget to\n"
              "the analyst: the quick answer cost only a fraction of the\n"
              "full query's epsilon.\n");
  return 0;
}
