// Budget explorer: sweeps the per-query epsilon and the hp1/hp2/hp3 split
// to show how budget allocation trades accuracy between protocol phases
// (Sec. 5.4) — a what-if tool for database administrators.
//
//   ./budget_explorer

#include <cstdio>

#include "core/fedaqp.h"

using namespace fedaqp;  // NOLINT: example brevity

namespace {

double MeanError(Federation* fed, const std::vector<RangeQuery>& queries) {
  double total_err = 0.0;
  size_t n = 0;
  for (const auto& q : queries) {
    Result<QueryResponse> exact = fed->QueryExact(q);
    Result<QueryResponse> priv = fed->Query(q);
    if (!exact.ok() || !priv.ok()) continue;
    total_err += RelativeError(exact->estimate, priv->estimate);
    ++n;
  }
  return n ? total_err / static_cast<double>(n) : -1.0;
}

std::unique_ptr<Federation> OpenWith(PrivacyBudget budget, BudgetSplit split) {
  SyntheticConfig cfg;
  cfg.rows = 40000;
  cfg.seed = 7;
  cfg.dims = {{"a", 80, DistributionKind::kNormal, 0.4},
              {"b", 50, DistributionKind::kZipf, 1.3},
              {"c", 25, DistributionKind::kUniform, 0.0}};
  Result<std::vector<Table>> parts = GenerateFederatedTensors(cfg, {0, 1, 2}, 4);
  if (!parts.ok()) return nullptr;
  FederationOptions opts;
  opts.cluster_capacity = 256;
  opts.n_min = 4;
  opts.protocol.per_query_budget = budget;
  opts.protocol.split = split;
  opts.protocol.sampling_rate = 0.2;
  opts.protocol.total_xi = 1e6;
  opts.protocol.total_psi = 1e3;
  Result<std::unique_ptr<Federation>> fed =
      Federation::Open(std::move(parts).value(), opts);
  return fed.ok() ? std::move(fed).value() : nullptr;
}

}  // namespace

int main() {
  // A fixed workload so configurations are comparable.
  Schema schema;
  (void)schema.AddDimension("a", 80);
  (void)schema.AddDimension("b", 50);
  (void)schema.AddDimension("c", 25);
  QueryGenOptions qopts;
  qopts.num_dims = 2;
  qopts.seed = 99;
  RandomQueryGenerator gen(schema, qopts);
  Result<std::vector<RangeQuery>> queries = gen.Workload(15);
  if (!queries.ok()) return 1;

  std::printf("== epsilon sweep (split fixed at 0.1/0.1/0.8) ==\n");
  std::printf("%8s %12s\n", "epsilon", "mean err%");
  for (double eps : {0.1, 0.3, 0.5, 0.9, 1.3}) {
    std::unique_ptr<Federation> fed =
        OpenWith({eps, 1e-3}, BudgetSplit{});
    if (!fed) continue;
    std::printf("%8.1f %11.2f%%\n", eps,
                100.0 * MeanError(fed.get(), *queries));
  }

  std::printf("\n== split sweep (epsilon fixed at 1.0) ==\n");
  std::printf("%22s %12s\n", "hp1/hp2/hp3", "mean err%");
  struct SplitCase {
    const char* label;
    BudgetSplit split;
  };
  std::vector<SplitCase> cases = {
      {"0.10/0.10/0.80", {0.10, 0.10, 0.80}},  // paper default
      {"0.33/0.33/0.34", {0.33, 0.33, 0.34}},
      {"0.05/0.05/0.90", {0.05, 0.05, 0.90}},
      {"0.60/0.20/0.20", {0.60, 0.20, 0.20}},
  };
  for (const auto& c : cases) {
    std::unique_ptr<Federation> fed = OpenWith({1.0, 1e-3}, c.split);
    if (!fed) continue;
    std::printf("%22s %11.2f%%\n", c.label,
                100.0 * MeanError(fed.get(), *queries));
  }

  std::printf("\ngiving most of the budget to the estimate release (hp3) is\n"
              "what keeps the final Laplace noise small — the paper's\n"
              "0.1/0.1/0.8 default reflects exactly that.\n");
  return 0;
}
