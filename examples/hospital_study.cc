// Hospital federation scenario (the paper's motivating example): several
// hospitals jointly analyze patient statistics during an epidemic without
// exposing individual records. Demonstrates the exact-path bypass for
// narrow queries, the approximation for broad ones, and budget exhaustion.
//
//   ./hospital_study

#include <cstdio>

#include "core/fedaqp.h"

using namespace fedaqp;  // NOLINT: example brevity

namespace {

// Patient admissions table: age x severity x ward x stay-days.
Result<std::vector<Table>> SynthesizeHospitals(size_t hospitals) {
  SyntheticConfig cfg;
  cfg.rows = 80000;
  cfg.seed = 2026;
  cfg.dims = {{"age", 90, DistributionKind::kNormal, 0.45},
              {"severity", 10, DistributionKind::kZipf, 1.6},
              {"ward", 12, DistributionKind::kCategoricalSkewed, 0.0},
              {"stay_days", 60, DistributionKind::kZipf, 1.2}};
  return GenerateFederatedTensors(cfg, {0, 1, 2, 3}, hospitals);
}

}  // namespace

int main() {
  Result<std::vector<Table>> parts = SynthesizeHospitals(4);
  if (!parts.ok()) return 1;

  FederationOptions opts;
  opts.cluster_capacity = 256;
  opts.n_min = 6;
  opts.protocol.per_query_budget = {1.0, 1e-3};
  opts.protocol.sampling_rate = 0.15;
  // The ethics board grants this study a total budget of (5, 0.01): only
  // five queries at eps=1 each.
  opts.protocol.total_xi = 5.0;
  opts.protocol.total_psi = 0.01;
  Result<std::unique_ptr<Federation>> fed =
      Federation::Open(std::move(parts).value(), opts);
  if (!fed.ok()) return 1;
  Federation& hospitals = **fed;

  std::printf("== multi-hospital study: %zu hospitals ==\n",
              hospitals.num_providers());

  struct Study {
    const char* label;
    RangeQuery query;
  };
  std::vector<Study> studies = {
      {"working-age severe cases",
       RangeQueryBuilder(Aggregation::kSum)
           .Where(0, 25, 60)
           .Where(1, 6, 9)
           .Build()},
      {"pediatric admissions (broad)",
       RangeQueryBuilder(Aggregation::kSum).Where(0, 0, 17).Build()},
      {"long stays in ICU wards",
       RangeQueryBuilder(Aggregation::kSum)
           .Where(2, 0, 2)
           .Where(3, 21, 59)
           .Build()},
      {"elderly mild cases",
       RangeQueryBuilder(Aggregation::kSum)
           .Where(0, 70, 89)
           .Where(1, 0, 2)
           .Build()},
      {"all severe cases",
       RangeQueryBuilder(Aggregation::kSum).Where(1, 7, 9).Build()},
      // This sixth query exceeds the ethics-board budget on purpose.
      {"one study too many",
       RangeQueryBuilder(Aggregation::kSum).Where(0, 0, 89).Build()},
  };

  for (const Study& study : studies) {
    Result<QueryResponse> exact = hospitals.QueryExact(study.query);
    Result<QueryResponse> priv = hospitals.Query(study.query);
    if (!priv.ok()) {
      std::printf("%-32s REFUSED: %s\n", study.label,
                  priv.status().ToString().c_str());
      continue;
    }
    std::printf("%-32s exact=%8.0f  private=%8.0f  err=%5.2f%%  %s\n",
                study.label, exact.ok() ? exact->estimate : -1.0,
                priv->estimate,
                exact.ok()
                    ? 100.0 * RelativeError(exact->estimate, priv->estimate)
                    : -1.0,
                priv->approximated ? "(approximated)" : "(exact path)");
  }

  const PrivacyAccountant& acct = hospitals.accountant();
  std::printf("\nbudget: %zu studies admitted, eps spent %.2f/%.2f\n",
              acct.num_charges(), acct.spent().epsilon, acct.total().epsilon);
  return 0;
}
