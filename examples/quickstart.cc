// Quickstart: build a 4-provider federation over synthetic data, ask one
// COUNT and one SUM range query privately, and compare with ground truth.
//
//   ./quickstart

#include <cstdio>

#include "core/fedaqp.h"

using namespace fedaqp;  // NOLINT: example brevity

int main() {
  // 1. Synthesize a table and horizontally partition it across providers.
  //    In a real deployment every provider arrives with its own data; the
  //    generator stands in for that.
  SyntheticConfig cfg;
  cfg.rows = 50000;
  cfg.seed = 42;
  cfg.dims = {{"age", 74, DistributionKind::kNormal, 0.3},
              {"department", 30, DistributionKind::kZipf, 1.3},
              {"visits", 50, DistributionKind::kUniform, 0.0}};
  Result<std::vector<Table>> parts = GenerateFederatedTensors(
      cfg, /*tensor_dims=*/{0, 1, 2}, /*providers=*/4);
  if (!parts.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 parts.status().ToString().c_str());
    return 1;
  }

  // 2. Open the federation: offline clustering + Algorithm-1 metadata, a
  //    per-query privacy budget of (1.0, 1e-3) split 10/10/80 across the
  //    protocol phases, and a 20% sampling rate.
  FederationOptions opts;
  opts.cluster_capacity = 256;
  opts.n_min = 4;
  opts.protocol.per_query_budget = {1.0, 1e-3};
  opts.protocol.sampling_rate = 0.2;
  opts.protocol.total_xi = 100.0;   // analyst grant
  opts.protocol.total_psi = 0.1;
  Result<std::unique_ptr<Federation>> fed =
      Federation::Open(std::move(parts).value(), opts);
  if (!fed.ok()) {
    std::fprintf(stderr, "open failed: %s\n", fed.status().ToString().c_str());
    return 1;
  }
  std::printf("federation: %zu providers, schema: %s, metadata: %.1f KB\n",
              (*fed)->num_providers(), (*fed)->schema().ToString().c_str(),
              (*fed)->MetadataBytes() / 1024.0);

  // 3. Ask queries.
  RangeQuery count_q = RangeQueryBuilder(Aggregation::kCount)
                           .Where(0, 20, 40)   // 20 <= age <= 40
                           .Where(1, 0, 10)    // department in [0, 10]
                           .Build();
  RangeQuery sum_q = RangeQueryBuilder(Aggregation::kSum)
                         .Where(0, 30, 60)
                         .Build();

  for (const RangeQuery& q : {count_q, sum_q}) {
    Result<QueryResponse> exact = (*fed)->QueryExact(q);
    Result<QueryResponse> priv = (*fed)->Query(q);
    if (!exact.ok() || !priv.ok()) {
      std::fprintf(stderr, "query failed\n");
      return 1;
    }
    std::printf("\n%s\n", q.ToString((*fed)->schema()).c_str());
    std::printf("  exact answer   : %.0f (scanned %zu rows)\n",
                exact->estimate, exact->breakdown.rows_scanned);
    std::printf("  private answer : %.0f (scanned %zu rows, rel.err %.2f%%)\n",
                priv->estimate, priv->breakdown.rows_scanned,
                100.0 * RelativeError(exact->estimate, priv->estimate));
    std::printf("  latency        : exact %.3f ms vs private %.3f ms\n",
                exact->breakdown.TotalSeconds() * 1e3,
                priv->breakdown.TotalSeconds() * 1e3);
  }

  // 4. Budget status.
  const PrivacyAccountant& acct = (*fed)->accountant();
  std::printf("\nprivacy: spent (eps=%.2f, delta=%.4f) of (xi=%.0f, psi=%.2f)"
              " across %zu queries\n",
              acct.spent().epsilon, acct.spent().delta, acct.total().epsilon,
              acct.total().delta, acct.num_charges());
  return 0;
}
