// fedaqp_shell — an interactive driver for poking the private federation
// from a terminal or a script. Reads one command per line from stdin.
// Queries run through the async FederationClient: synchronous commands
// (count/sum/exact/batch) submit and wait inline; the submit/await/
// cancel/tickets commands expose the asynchronous surface directly.
//
//   open adult|amazon <rows> <providers> [seed]    build a federation
//   budget <eps> <delta> <xi> <psi>                per-query + total grant
//   rate <sr>                                      sampling rate in (0,1)
//   mode dp|smc                                    release mode
//   threads <n> [shards]                           worker pool + per-provider
//                                                  scan shards on that pool
//   sched graph|barrier                            batch scheduler (task graph
//                                                  is the default)
//   serve <base_port>                              host the open federation's
//                                                  providers over TCP (one
//                                                  port per provider)
//   connect <host:port> [<host:port> ...]          coordinate remote providers
//   serve-ledger <port>                            host a shared budget
//                                                  authority (LedgerService)
//   ledger connect <host:port> [coordinator_id]    charge through a remote
//                                                  ledger service instead of
//                                                  the in-process ledger
//   ledger off                                     back to the local ledger
//   fair on|off                                    weighted-fair (DWRR)
//                                                  admission + deadline
//                                                  eviction (default: FIFO)
//   weight <analyst> <w>                           fair-admission weight (>=1)
//   loadgen <qps> <secs> [high,low,reuse] [deadline=<sec>]
//                                                  open-loop load run with
//                                                  per-class latency quantiles
//   count|sum|sumsq <dim lo hi> [<dim lo hi> ...]  run a private query
//   exact count|sum|sumsq <dim lo hi> ...          plain-text baseline
//   batch <k> count|sum|sumsq <dim lo hi> ...      k copies as one batch
//   submit <analyst> [exact] count|sum|sumsq <dim lo hi> ...
//          [prio=high|normal|low] [deadline=<sec>] [rounds=<n>]
//                                                  async submission; returns a
//                                                  ticket id immediately
//                                                  (rounds= makes it
//                                                  progressive)
//   await <ticket>                                 block on a ticket
//   cancel <ticket>                                cancel; unspent budget is
//                                                  refunded
//   tickets                                        list submitted tickets
//   groupby <dim> count|sum <dim lo hi> ...        private group-by
//   cache on|off [horizon]                         noisy-answer cache; with a
//                                                  horizon the planner shrinks
//                                                  per-query epsilon to answer
//                                                  that many queries
//   plan <analyst> count|sum|sumsq <dim lo hi> [/ count ...]
//                                                  dry-run a workload: which
//                                                  queries the cache serves
//                                                  free and what epsilon the
//                                                  planner gives the rest
//   schema                                         print dimensions
//   status                                         per-analyst ledger state
//                                                  (+ registry counters)
//   stats [prefix]                                 dump the metric registry
//   trace on|off|export <file>                     span tracing; export writes
//                                                  Chrome trace-event JSON
//   audit <analyst>                                budget audit trail
//   loglevel [debug|info|warn|error]               library log filter
//   help / quit
//
// Example session:
//   open adult 100000 4
//   rate 0.2
//   count 0 20 40
//   submit alice count 0 20 40 prio=high
//   await 2
//   status

#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/fedaqp.h"
#include "exec/federation_client.h"
#include "federation/derived.h"
#include "obs/audit_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/remote_endpoint.h"
#include "rpc/server.h"
#include "serve/ledger_service.h"
#include "serve/loadgen.h"

namespace fedaqp {
namespace {

/// The implicit analyst the synchronous commands charge.
constexpr const char* kShellAnalyst = "shell";

struct ShellState {
  std::unique_ptr<Federation> federation;
  /// The async session layer every query runs through. Owns the
  /// orchestrator (and its admission thread); rebuilt on setting changes.
  std::unique_ptr<FederationClient> client;
  /// Local providers hosted over TCP (`serve`). Declared after
  /// `federation` so they stop before the providers they borrow die.
  std::vector<std::unique_ptr<RpcProviderServer>> servers;
  /// Remote providers this shell coordinates (`connect`). When non-empty
  /// the client runs over these instead of the local federation.
  std::vector<std::shared_ptr<ProviderEndpoint>> remote_endpoints;
  /// Shared budget authority this shell hosts (`serve-ledger`).
  std::unique_ptr<serve::LedgerService> ledger_service;
  /// When set (`ledger connect`), every budget op the client makes goes
  /// through this remote service instead of the in-process ledger; it
  /// survives `open`/setting rebuilds until `ledger off`.
  std::shared_ptr<serve::RemoteLedger> remote_ledger;
  /// `fair on|off`: DWRR admission + deadline eviction vs plain FIFO.
  bool fair_admission = false;
  /// `weight` assignments, replayed into each rebuilt client.
  std::map<std::string, uint32_t> analyst_weights;
  /// Outstanding and completed tickets by id (`submit`/`await`/`cancel`).
  std::map<uint64_t, QueryTicket> tickets;
  PrivacyBudget per_query{1.0, 1e-3};
  double xi = 100.0;
  double psi = 0.1;
  double sampling_rate = 0.2;
  ReleaseMode mode = ReleaseMode::kLocalDp;
  size_t num_threads = 1;
  size_t num_scan_shards = 1;
  BatchScheduler scheduler = BatchScheduler::kTaskGraph;
  bool enable_cache = false;
  size_t plan_horizon = 0;

  Status Rebuild() {
    if (!federation && remote_endpoints.empty()) {
      return Status::FailedPrecondition(
          "no federation open (use `open` or `connect`)");
    }
    FederationConfig config;
    config.per_query_budget = per_query;
    config.sampling_rate = sampling_rate;
    config.mode = mode;
    config.total_xi = xi;
    config.total_psi = psi;
    config.num_threads = num_threads;
    config.num_scan_shards = num_scan_shards;
    config.scheduler = scheduler;
    FederationClient::Options opts;
    opts.protocol = config;
    opts.analysts = {{kShellAnalyst, xi, psi}};
    opts.enable_cache = enable_cache;
    // Local providers expose cluster metadata, so the cache can refuse
    // remainders that cross the same cut cells as the full range.
    opts.cache_align_to_metadata = remote_endpoints.empty();
    opts.plan_horizon = plan_horizon;
    opts.fair_admission = fair_admission;
    // Deadline eviction rides with fair admission: queued work whose
    // deadline passes before any protocol stage ran is cancelled and
    // fully refunded instead of running to a useless completion.
    opts.evict_expired = fair_admission;
    opts.shared_ledger = remote_ledger;
    // Old tickets belong to the torn-down client; drop the handles
    // (waiters already completed — the client drains at destruction).
    tickets.clear();
    client.reset();
    FEDAQP_ASSIGN_OR_RETURN(
        client,
        remote_endpoints.empty()
            ? FederationClient::Create(federation->provider_ptrs(), opts)
            : FederationClient::Create(remote_endpoints, opts));
    for (const auto& w : analyst_weights) {
      client->SetAnalystWeight(w.first, w.second);
    }
    return Status::OK();
  }

  /// Registers `analyst` with the shell's default grant on first use.
  void EnsureAnalyst(const std::string& analyst) {
    if (!client->ledger().Knows(analyst)) {
      client->RegisterAnalyst(analyst, xi, psi);
    }
  }
};

Result<RangeQuery> ParseQuery(Aggregation agg, std::istringstream* in) {
  std::vector<DimRange> ranges;
  long dim, lo, hi;
  while (*in >> dim >> lo >> hi) {
    ranges.push_back(DimRange{static_cast<size_t>(dim), lo, hi});
  }
  return RangeQuery(agg, std::move(ranges));
}

Result<Aggregation> ParseAgg(const std::string& word) {
  if (word == "count") return Aggregation::kCount;
  if (word == "sum") return Aggregation::kSum;
  if (word == "sumsq") return Aggregation::kSumSquares;
  return Status::InvalidArgument("unknown aggregation '" + word + "'");
}

const char* PriorityName(QueryPriority priority) {
  switch (priority) {
    case QueryPriority::kHigh:
      return "high";
    case QueryPriority::kNormal:
      return "normal";
    case QueryPriority::kLow:
      return "low";
  }
  return "?";
}

void PrintResponse(const char* label, const QueryResponse& resp) {
  std::printf("%s = %.1f", label, resp.estimate);
  if (resp.stderr_estimate > 0.0) {
    std::printf("  (stderr %.1f)", resp.stderr_estimate);
  }
  std::printf("  [%.2f ms, %zu rows scanned]\n",
              resp.breakdown.TotalSeconds() * 1e3,
              resp.breakdown.rows_scanned);
}

void PrintTicketOutcome(uint64_t id, QueryTicket& ticket) {
  Result<QueryResponse> result = ticket.Wait();
  const TicketStats stats = ticket.Stats();
  if (!result.ok()) {
    std::printf("ticket %llu: %s", static_cast<unsigned long long>(id),
                result.status().ToString().c_str());
    if (stats.refunded.epsilon > 0.0 || stats.refunded.delta > 0.0) {
      std::printf("  (refunded eps=%.4f, delta=%.6f)",
                  stats.refunded.epsilon, stats.refunded.delta);
    }
    std::printf("\n");
    return;
  }
  char label[64];
  std::snprintf(label, sizeof(label), "ticket %llu",
                static_cast<unsigned long long>(id));
  PrintResponse(label, *result);
  if (stats.served_from_cache) {
    std::printf("    served from cache (%u purchased sub-answers reused) — "
                "zero budget charged\n", stats.cache_sub_answers);
  }
  std::vector<ProgressiveRound> rounds = ticket.Refinements();
  for (const ProgressiveRound& r : rounds) {
    std::printf("    round %zu: %.1f (stderr %.1f, eps spent %.4f)\n",
                r.round, r.estimate, r.stderr_estimate, r.spent.epsilon);
  }
  std::printf("    wall %.2f ms, simulated %.2f ms, %llu bytes on the wire\n",
              stats.wall_seconds * 1e3, stats.simulated_seconds * 1e3,
              static_cast<unsigned long long>(stats.simulated_network_bytes));
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  open adult|amazon <rows> <providers> [seed]\n"
      "  budget <eps> <delta> <xi> <psi>\n"
      "  rate <sr>          mode dp|smc          threads <n> [scan_shards]\n"
      "  sched graph|barrier              batch scheduler (default: graph)\n"
      "  serve <base_port>                host providers over TCP\n"
      "  connect <host:port> [...]        coordinate remote providers\n"
      "  serve-ledger <port>              host a shared budget authority\n"
      "  ledger connect <host:port> [id]  charge through a remote ledger\n"
      "                                   service   (ledger off = local)\n"
      "  fair on|off                      DWRR admission + deadline\n"
      "                                   eviction (default: FIFO)\n"
      "  weight <analyst> <w>             fair-admission weight (>= 1)\n"
      "  loadgen <qps> <secs> [high,low,reuse] [deadline=<sec>]\n"
      "                                   open-loop load run (per-class\n"
      "                                   p50/p99/p999)\n"
      "  count|sum|sumsq <dim lo hi> [...]\n"
      "  exact count|sum|sumsq <dim lo hi> [...]\n"
      "  batch <k> count|sum|sumsq <dim lo hi> [...]\n"
      "  submit <analyst> [exact] count|sum|sumsq <dim lo hi> [...]\n"
      "         [prio=high|normal|low] [deadline=<sec>] [rounds=<n>]\n"
      "  await <ticket>   cancel <ticket>   tickets\n"
      "  groupby <dim> count|sum <dim lo hi> [...]\n"
      "  cache on|off [horizon]           noisy-answer cache (+ planner "
      "horizon)\n"
      "  plan <analyst> count|sum|sumsq <dim lo hi> [/ count ...]\n"
      "  stats [prefix]                   dump the metric registry\n"
      "                                   (`stats storage` = scan kernels,\n"
      "                                   mmap residency)\n"
      "  trace on|off|export <file>       span tracing (Chrome trace JSON)\n"
      "  audit <analyst>                  budget audit trail\n"
      "  loglevel [debug|info|warn|error] library log filter\n"
      "  schema   status   help   quit\n");
}

int Run() {
  ShellState state;
  std::string line;
  std::printf("fedaqp shell — `help` for commands\n");
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
      continue;
    }

    if (cmd == "open") {
      std::string dataset;
      size_t rows = 0, providers = 4;
      uint64_t seed = 1;
      in >> dataset >> rows >> providers;
      in >> seed;
      SyntheticConfig cfg;
      std::vector<size_t> tensor_dims;
      if (dataset == "adult") {
        cfg = AdultConfig(rows, seed);
        tensor_dims = AdultTensorDims();
      } else if (dataset == "amazon") {
        cfg = AmazonConfig(rows, seed);
        tensor_dims = AmazonTensorDims();
      } else {
        std::printf("unknown dataset '%s' (adult|amazon)\n", dataset.c_str());
        continue;
      }
      Result<std::vector<Table>> parts =
          GenerateFederatedTensors(cfg, tensor_dims, providers);
      if (!parts.ok()) {
        std::printf("error: %s\n", parts.status().ToString().c_str());
        continue;
      }
      size_t cells = 0;
      for (const auto& t : *parts) cells += t.num_rows();
      FederationOptions opts;
      opts.cluster_capacity =
          std::max<size_t>(256, cells / providers / 50);
      opts.layout = ClusterLayout::kShuffled;
      opts.n_min = 8;
      opts.seed = seed;
      Result<std::unique_ptr<Federation>> fed =
          Federation::Open(std::move(parts).value(), opts);
      if (!fed.ok()) {
        std::printf("error: %s\n", fed.status().ToString().c_str());
        continue;
      }
      // Stop serving and drain the client BEFORE replacing the
      // federation: both hold raw pointers into the old providers.
      state.servers.clear();
      state.tickets.clear();
      state.client.reset();
      state.federation = std::move(fed).value();
      // A locally opened federation takes over from any remote session.
      state.remote_endpoints.clear();
      Status st = state.Rebuild();
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        continue;
      }
      std::printf("opened %s: %zu providers, %zu cells, schema: %s\n",
                  dataset.c_str(), providers, cells,
                  state.federation->schema().ToString().c_str());
      continue;
    }

    if (cmd == "budget" || cmd == "rate" || cmd == "mode" ||
        cmd == "threads" || cmd == "sched") {
      if (cmd == "budget") {
        in >> state.per_query.epsilon >> state.per_query.delta >> state.xi >>
            state.psi;
      } else if (cmd == "rate") {
        in >> state.sampling_rate;
      } else if (cmd == "mode") {
        std::string m;
        in >> m;
        state.mode = m == "smc" ? ReleaseMode::kSmc : ReleaseMode::kLocalDp;
      } else if (cmd == "threads") {
        in >> state.num_threads;
        if (state.num_threads == 0) state.num_threads = 1;
        // Optional second arg: intra-provider scan shards sharing the pool.
        size_t shards = 0;
        if (in >> shards) state.num_scan_shards = shards == 0 ? 1 : shards;
      } else {
        std::string which;
        in >> which;
        if (which == "graph") {
          state.scheduler = BatchScheduler::kTaskGraph;
        } else if (which == "barrier") {
          state.scheduler = BatchScheduler::kPhaseBarrier;
        } else {
          std::printf("usage: sched graph|barrier\n");
          continue;
        }
      }
      Status st = state.Rebuild();
      std::printf("%s\n", st.ok() ? "ok (ledgers reset)"
                                  : st.ToString().c_str());
      continue;
    }

    if (cmd == "cache") {
      std::string which;
      in >> which;
      if (which != "on" && which != "off") {
        std::printf("usage: cache on|off [horizon]\n");
        continue;
      }
      state.enable_cache = which == "on";
      size_t horizon = 0;
      state.plan_horizon = (in >> horizon) ? horizon : 0;
      Status st = state.Rebuild();
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        continue;
      }
      if (state.enable_cache && state.plan_horizon > 0) {
        std::printf("cache on, planner horizon %zu (ledgers reset)\n",
                    state.plan_horizon);
      } else {
        std::printf("cache %s (ledgers reset)\n",
                    state.enable_cache ? "on" : "off");
      }
      continue;
    }

    if (cmd == "plan") {
      if (!state.client) {
        std::printf("no federation open\n");
        continue;
      }
      std::string analyst;
      if (!(in >> analyst)) {
        std::printf(
            "usage: plan <analyst> count|sum|sumsq <dim lo hi> "
            "[/ count ...]\n");
        continue;
      }
      std::vector<RangeQuery> workload;
      bool parse_ok = true;
      std::string aggword;
      while (in >> aggword) {
        if (aggword == "/") continue;
        Result<Aggregation> agg = ParseAgg(aggword);
        if (!agg.ok()) {
          std::printf("%s\n", agg.status().ToString().c_str());
          parse_ok = false;
          break;
        }
        Result<RangeQuery> q = ParseQuery(*agg, &in);
        if (!q.ok()) {
          std::printf("error: %s\n", q.status().ToString().c_str());
          parse_ok = false;
          break;
        }
        workload.push_back(std::move(q).value());
        // ParseQuery stops (failbit) at the '/' separator; recover.
        in.clear();
      }
      if (!parse_ok) continue;
      if (workload.empty()) {
        std::printf("plan: no queries given\n");
        continue;
      }
      state.EnsureAnalyst(analyst);
      Result<BudgetPlanner::WorkloadPlan> plan =
          state.client->PlanWorkload(analyst, workload);
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
        continue;
      }
      for (size_t i = 0; i < plan->queries.size(); ++i) {
        const BudgetPlanner::PlannedQuery& pq = plan->queries[i];
        if (pq.predicted_cached) {
          std::printf("  [%zu] cached — free\n", i);
        } else if (!pq.answerable) {
          std::printf("  [%zu] unanswerable (grant exhausted even at the "
                      "epsilon floor)\n", i);
        } else {
          std::printf("  [%zu] eps=%.4f, delta=%.6f\n", i,
                      pq.budget.epsilon, pq.budget.delta);
        }
      }
      std::printf(
          "plan: %zu/%zu answerable (%zu predicted cache hits); "
          "eps %.4f per chargeable query; projected spend "
          "(eps=%.4f, delta=%.6f)\n",
          plan->answerable, plan->queries.size(), plan->predicted_hits,
          plan->eps_per_query, plan->projected_spend.epsilon,
          plan->projected_spend.delta);
      continue;
    }

    if (cmd == "serve") {
      if (!state.federation) {
        std::printf("no federation open\n");
        continue;
      }
      long base_port = 0;
      if (!(in >> base_port) || base_port < 0 || base_port > 65535) {
        std::printf("usage: serve <base_port>  (0 = ephemeral ports)\n");
        continue;
      }
      // Fresh `serve` replaces any previous one (old ports close).
      state.servers.clear();
      Result<std::vector<std::unique_ptr<RpcProviderServer>>> servers =
          state.federation->Serve(static_cast<uint16_t>(base_port));
      if (!servers.ok()) {
        std::printf("error: %s\n", servers.status().ToString().c_str());
        continue;
      }
      state.servers = std::move(servers).value();
      for (size_t i = 0; i < state.servers.size(); ++i) {
        std::printf("  provider %zu listening on port %u\n", i,
                    state.servers[i]->port());
      }
      std::printf("serving; connect from another shell with:\n  connect");
      for (const auto& s : state.servers) {
        std::printf(" 127.0.0.1:%u", s->port());
      }
      std::printf("\n");
      continue;
    }

    if (cmd == "connect") {
      std::vector<std::string> host_ports;
      std::string hp;
      while (in >> hp) host_ports.push_back(hp);
      if (host_ports.empty()) {
        std::printf("usage: connect <host:port> [<host:port> ...]\n");
        continue;
      }
      Result<std::vector<std::shared_ptr<ProviderEndpoint>>> endpoints =
          RemoteEndpoint::ConnectAll(host_ports);
      if (!endpoints.ok()) {
        std::printf("error: %s\n", endpoints.status().ToString().c_str());
        continue;
      }
      state.remote_endpoints = std::move(endpoints).value();
      Status st = state.Rebuild();
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        state.remote_endpoints.clear();
        continue;
      }
      std::printf("connected to %zu remote providers, schema: %s\n",
                  state.remote_endpoints.size(),
                  state.client->schema().ToString().c_str());
      continue;
    }

    if (cmd == "serve-ledger") {
      long port = 0;
      if (!(in >> port) || port < 0 || port > 65535) {
        std::printf("usage: serve-ledger <port>  (0 = ephemeral port)\n");
        continue;
      }
      serve::LedgerService::Options lopts;
      lopts.port = static_cast<uint16_t>(port);
      Result<std::unique_ptr<serve::LedgerService>> svc =
          serve::LedgerService::Start(lopts);
      if (!svc.ok()) {
        std::printf("error: %s\n", svc.status().ToString().c_str());
        continue;
      }
      state.ledger_service = std::move(svc).value();
      // Seed the roster with the shell's default grant so a connecting
      // coordinator's identical re-registration joins instead of failing.
      state.ledger_service->Register(kShellAnalyst, state.xi, state.psi);
      std::printf(
          "ledger service on port %u; attach a coordinator shell with:\n"
          "  ledger connect 127.0.0.1:%u\n",
          state.ledger_service->port(), state.ledger_service->port());
      continue;
    }

    if (cmd == "ledger") {
      std::string sub;
      in >> sub;
      if (sub == "off") {
        if (!state.remote_ledger) {
          std::printf("no shared ledger attached\n");
          continue;
        }
        state.remote_ledger.reset();
        Status st = state.Rebuild();
        std::printf("%s\n", st.ok() ? "back to the in-process ledger "
                                      "(ledgers reset)"
                                    : st.ToString().c_str());
        continue;
      }
      std::string hp;
      if (sub != "connect" || !(in >> hp)) {
        std::printf("usage: ledger connect <host:port> [coordinator_id] | "
                    "ledger off\n");
        continue;
      }
      const size_t colon = hp.rfind(':');
      if (colon == std::string::npos) {
        std::printf("usage: ledger connect <host:port> [coordinator_id]\n");
        continue;
      }
      unsigned long coordinator = 1;
      in >> coordinator;  // optional; must be unique per coordinator
      Result<std::shared_ptr<serve::RemoteLedger>> remote =
          serve::RemoteLedger::Connect(
              hp.substr(0, colon),
              static_cast<uint16_t>(std::atol(hp.c_str() + colon + 1)),
              static_cast<uint32_t>(coordinator == 0 ? 1 : coordinator));
      if (!remote.ok()) {
        std::printf("error: %s\n", remote.status().ToString().c_str());
        continue;
      }
      state.remote_ledger = std::move(remote).value();
      if (state.federation || !state.remote_endpoints.empty()) {
        Status st = state.Rebuild();
        if (!st.ok()) {
          std::printf("error: %s\n", st.ToString().c_str());
          state.remote_ledger.reset();
          continue;
        }
      }
      std::printf("budget ops now go through %s as coordinator %lu "
                  "(the authoritative ledger lives in the service)\n",
                  hp.c_str(), coordinator == 0 ? 1 : coordinator);
      continue;
    }

    if (cmd == "fair") {
      std::string which;
      in >> which;
      if (which != "on" && which != "off") {
        std::printf("usage: fair on|off\n");
        continue;
      }
      state.fair_admission = which == "on";
      if (state.federation || !state.remote_endpoints.empty()) {
        Status st = state.Rebuild();
        if (!st.ok()) {
          std::printf("error: %s\n", st.ToString().c_str());
          continue;
        }
      }
      std::printf(state.fair_admission
                      ? "fair admission on: DWRR over analyst weights + "
                        "deadline eviction (ledgers reset)\n"
                      : "fair admission off: FIFO arrival order "
                        "(ledgers reset)\n");
      continue;
    }

    if (cmd == "weight") {
      std::string analyst;
      unsigned long w = 0;
      if (!(in >> analyst >> w) || w == 0) {
        std::printf("usage: weight <analyst> <w>  (w >= 1)\n");
        continue;
      }
      state.analyst_weights[analyst] = static_cast<uint32_t>(w);
      if (state.client) {
        state.client->SetAnalystWeight(analyst, static_cast<uint32_t>(w));
      }
      std::printf("weight[%s] = %lu%s\n", analyst.c_str(), w,
                  state.fair_admission ? ""
                                       : " (takes effect with `fair on`)");
      continue;
    }

    if (cmd == "loadgen") {
      if (!state.client) {
        std::printf("no federation open\n");
        continue;
      }
      double qps = 0.0, secs = 0.0;
      if (!(in >> qps >> secs) || qps <= 0.0 || secs <= 0.0) {
        std::printf("usage: loadgen <qps> <secs> [high,low,reuse] "
                    "[deadline=<sec>]\n");
        continue;
      }
      serve::LoadOptions lopts;
      lopts.offered_qps = qps;
      lopts.duration_seconds = secs;
      lopts.num_analysts = 2;
      lopts.analyst_prefix = "lg";
      lopts.seed = 7;
      serve::LoadMix mix;
      mix.reuse_fraction = state.enable_cache ? 0.25 : 0.0;
      std::string opt;
      bool opts_ok = true;
      while (in >> opt) {
        if (opt.rfind("deadline=", 0) == 0) {
          lopts.deadline_seconds = std::atof(opt.c_str() + 9);
        } else if (std::sscanf(opt.c_str(), "%lf,%lf,%lf",
                               &mix.high_fraction, &mix.low_fraction,
                               &mix.reuse_fraction) == 3) {
          // high,low,reuse fractions parsed in place.
        } else {
          std::printf("unknown option '%s'\n", opt.c_str());
          opts_ok = false;
          break;
        }
      }
      if (!opts_ok) continue;
      state.EnsureAnalyst("lg0");
      state.EnsureAnalyst("lg1");
      // Wide count queries over dimension 0 — broad enough that the
      // per-provider admission predicate accepts them at any scale.
      const Schema& s = state.client->schema();
      const long dom = static_cast<long>(s.dim(0).domain_size);
      std::vector<RangeQuery> workload;
      for (long i = 0; i < 8; ++i) {
        workload.push_back(RangeQuery(
            Aggregation::kCount,
            {DimRange{0, (dom * i) / 32, dom - 1 - i}}));
      }
      serve::LoadGenerator gen(state.client.get(), std::move(workload));
      serve::LoadReport rep = gen.Run(lopts, mix);
      std::printf(
          "offered %.0f q/s for %.2f s: achieved %.1f q/s\n"
          "  %llu submitted: %llu ok (%llu cache-served), %llu refused, "
          "%llu evicted, %llu budget-refused, %llu failed\n",
          rep.offered_qps, rep.wall_seconds, rep.achieved_qps,
          static_cast<unsigned long long>(rep.submitted),
          static_cast<unsigned long long>(rep.ok),
          static_cast<unsigned long long>(rep.cache_served),
          static_cast<unsigned long long>(rep.refused),
          static_cast<unsigned long long>(rep.evicted),
          static_cast<unsigned long long>(rep.budget_refused),
          static_cast<unsigned long long>(rep.failed));
      const char* names[3] = {"high", "normal", "low"};
      for (size_t c = 0; c < 3; ++c) {
        const serve::ClassReport& cr = rep.per_class[c];
        if (cr.submitted == 0) continue;
        std::printf(
            "  %-6s %llu/%llu ok  p50 %.2f ms  p99 %.2f ms  p999 %.2f ms\n",
            names[c], static_cast<unsigned long long>(cr.ok),
            static_cast<unsigned long long>(cr.submitted),
            cr.p50_seconds * 1e3, cr.p99_seconds * 1e3,
            cr.p999_seconds * 1e3);
      }
      continue;
    }

    if (cmd == "batch") {
      if (!state.client) {
        std::printf("no federation open\n");
        continue;
      }
      size_t k = 0;
      std::string aggword;
      if (!(in >> k >> aggword) || k == 0) {
        std::printf("usage: batch <k> count|sum|sumsq <dim lo hi> ...\n");
        continue;
      }
      Result<Aggregation> agg = ParseAgg(aggword);
      if (!agg.ok()) {
        std::printf("%s\n", agg.status().ToString().c_str());
        continue;
      }
      Result<RangeQuery> q = ParseQuery(*agg, &in);
      if (!q.ok()) {
        std::printf("error: %s\n", q.status().ToString().c_str());
        continue;
      }
      // Pause around the burst so the whole batch lands in one admission
      // round — the batch stats below then describe exactly these k.
      state.client->Pause();
      std::vector<QuerySpec> specs(k);
      for (QuerySpec& spec : specs) {
        spec.analyst = kShellAnalyst;
        spec.query = *q;
      }
      std::vector<QueryTicket> batch_tickets =
          state.client->SubmitAll(std::move(specs));
      state.client->Resume();
      size_t answered = 0;
      double simulated_total = 0.0;
      for (size_t i = 0; i < batch_tickets.size(); ++i) {
        Result<QueryResponse> resp = batch_tickets[i].Wait();
        if (resp.ok()) {
          const QueryBreakdown& b = resp->breakdown;
          std::printf(
              "  [%zu] %.1f  (%.2f ms simulated: providers %.2f, "
              "aggregator %.2f, network %.2f)\n",
              i, resp->estimate, b.TotalSeconds() * 1e3,
              b.provider_compute_seconds * 1e3,
              b.aggregator_compute_seconds * 1e3, b.network_seconds * 1e3);
          simulated_total += b.TotalSeconds();
          ++answered;
        } else {
          std::printf("  [%zu] error: %s\n", i,
                      resp.status().ToString().c_str());
        }
      }
      state.client->WaitIdle();
      const BatchRunStats& stats =
          state.client->orchestrator().last_batch_stats();
      std::printf(
          "batch: %zu/%zu answered; %.2f ms simulated critical path "
          "(sum over queries); %.2f ms wall, %.2f ms critical path as "
          "scheduled\n",
          answered, batch_tickets.size(), simulated_total * 1e3,
          stats.wall_seconds * 1e3, stats.critical_path_seconds * 1e3);
      continue;
    }

    if (cmd == "submit") {
      if (!state.client) {
        std::printf("no federation open\n");
        continue;
      }
      std::string analyst, aggword;
      if (!(in >> analyst >> aggword)) {
        std::printf(
            "usage: submit <analyst> [exact] count|sum|sumsq <dim lo hi> "
            "... [prio=high|normal|low] [deadline=<sec>] [rounds=<n>]\n");
        continue;
      }
      QuerySpec spec;
      spec.analyst = analyst;
      if (aggword == "exact") {
        spec.kind = QueryKind::kExact;
        if (!(in >> aggword)) {
          std::printf("usage: submit <analyst> exact count|sum|sumsq ...\n");
          continue;
        }
      }
      Result<Aggregation> agg = ParseAgg(aggword);
      if (!agg.ok()) {
        std::printf("%s\n", agg.status().ToString().c_str());
        continue;
      }
      Result<RangeQuery> q = ParseQuery(*agg, &in);
      if (!q.ok()) {
        std::printf("error: %s\n", q.status().ToString().c_str());
        continue;
      }
      spec.query = std::move(q).value();
      // ParseQuery stopped at the first non-numeric token; the rest of
      // the line is trailing key=value options.
      in.clear();
      std::string opt;
      bool opts_ok = true;
      while (in >> opt) {
        if (opt.rfind("prio=", 0) == 0) {
          std::string p = opt.substr(5);
          if (p == "high") {
            spec.priority = QueryPriority::kHigh;
          } else if (p == "normal") {
            spec.priority = QueryPriority::kNormal;
          } else if (p == "low") {
            spec.priority = QueryPriority::kLow;
          } else {
            std::printf("unknown priority '%s'\n", p.c_str());
            opts_ok = false;
            break;
          }
        } else if (opt.rfind("deadline=", 0) == 0) {
          spec.deadline_seconds = std::atof(opt.c_str() + 9);
        } else if (opt.rfind("rounds=", 0) == 0) {
          if (spec.kind == QueryKind::kExact) {
            std::printf("rounds= does not combine with exact (the exact "
                        "baseline has no refinement rounds)\n");
            opts_ok = false;
            break;
          }
          spec.kind = QueryKind::kProgressive;
          spec.progressive_rounds =
              static_cast<size_t>(std::atol(opt.c_str() + 7));
        } else {
          std::printf("unknown option '%s'\n", opt.c_str());
          opts_ok = false;
          break;
        }
      }
      if (!opts_ok) continue;
      if (spec.kind != QueryKind::kExact) state.EnsureAnalyst(analyst);
      QueryTicket ticket = state.client->Submit(std::move(spec));
      state.tickets.emplace(ticket.id(), ticket);
      std::printf("ticket %llu submitted (analyst=%s, prio=%s)\n",
                  static_cast<unsigned long long>(ticket.id()),
                  ticket.spec().analyst.c_str(),
                  PriorityName(ticket.spec().priority));
      continue;
    }

    if (cmd == "await" || cmd == "cancel") {
      unsigned long long id = 0;
      if (!(in >> id)) {
        std::printf("usage: %s <ticket>\n", cmd.c_str());
        continue;
      }
      auto it = state.tickets.find(id);
      if (it == state.tickets.end()) {
        std::printf("no ticket %llu\n", id);
        continue;
      }
      if (cmd == "cancel") {
        bool effective = it->second.Cancel();
        std::printf(effective
                        ? "ticket %llu cancelled (unspent budget refunded at "
                          "delivery)\n"
                        : "ticket %llu: too late to cancel (result stands)\n",
                    id);
        continue;
      }
      PrintTicketOutcome(id, it->second);
      continue;
    }

    if (cmd == "tickets") {
      if (state.tickets.empty()) {
        std::printf("no tickets\n");
        continue;
      }
      for (auto& entry : state.tickets) {
        QueryTicket& ticket = entry.second;
        std::printf("  %llu  %-8s prio=%-6s ",
                    static_cast<unsigned long long>(entry.first),
                    ticket.spec().kind == QueryKind::kExact
                        ? "exact"
                        : ticket.spec().analyst.c_str(),
                    PriorityName(ticket.spec().priority));
        if (!ticket.Done()) {
          std::printf("pending\n");
          continue;
        }
        Result<QueryResponse> resp = ticket.TryGet();
        if (resp.ok()) {
          std::printf("done: %.1f\n", resp->estimate);
        } else {
          std::printf("%s\n", resp.status().ToString().c_str());
        }
      }
      continue;
    }

    if (cmd == "schema") {
      if (!state.client) {
        std::printf("no federation open\n");
        continue;
      }
      const Schema& s = state.client->schema();
      for (size_t d = 0; d < s.num_dims(); ++d) {
        std::printf("  [%zu] %s in [0, %lld)\n", d, s.dim(d).name.c_str(),
                    static_cast<long long>(s.dim(d).domain_size));
      }
      continue;
    }

    if (cmd == "status") {
      if (!state.client) {
        std::printf("no federation open\n");
        continue;
      }
      const AnalystLedger& ledger = state.client->ledger();
      for (const std::string& analyst : ledger.Analysts()) {
        Result<PrivacyBudget> spent = ledger.Spent(analyst);
        Result<PrivacyBudget> remaining = ledger.Remaining(analyst);
        if (!spent.ok() || !remaining.ok()) continue;
        std::printf(
            "  %-10s spent (eps=%.4f, delta=%.6f), remaining "
            "(eps=%.2f, delta=%.4f)",
            analyst.c_str(), spent->epsilon, spent->delta,
            remaining->epsilon, remaining->delta);
        Result<PrivacyBudget> saved = ledger.Saved(analyst);
        if (saved.ok() && (saved->epsilon > 0.0 || saved->delta > 0.0)) {
          std::printf(", cache saved (eps=%.4f, delta=%.6f)",
                      saved->epsilon, saved->delta);
        }
        std::printf("\n");
      }
      // Everything below reads the process-wide MetricRegistry — the same
      // numbers `stats` dumps raw — instead of re-plumbing each
      // subsystem's private counters through the shell.
      auto& reg = obs::MetricRegistry::Global();
      const auto counter = [&reg](const char* name) {
        return static_cast<unsigned long long>(reg.GetCounter(name)->Value());
      };
      if (state.client->cache() != nullptr) {
        std::printf(
            "cache: %llu lookups — %llu exact hits, %llu full + %llu "
            "partial compositions, %llu misses; %llu invalidated\n",
            counter("cache.lookups"), counter("cache.exact_hits"),
            counter("cache.full_compositions"),
            counter("cache.partial_compositions"), counter("cache.misses"),
            counter("cache.invalidated"));
      }
      // Derived workloads (groupby) charge the orchestrator's own
      // accountant, a separate (xi, psi) pool from the per-analyst
      // ledger above — show it too so no spend is invisible.
      state.client->WaitIdle();
      const PrivacyAccountant& acct =
          state.client->orchestrator().accountant();
      std::printf(
          "  %-10s spent (eps=%.4f, delta=%.6f) of (xi=%.2f, psi=%.4f), "
          "%zu queries\n",
          "[groupby]", acct.spent().epsilon, acct.spent().delta,
          acct.total().epsilon, acct.total().delta, acct.num_charges());
      std::printf("sr=%.2f; mode=%s; sched=%s; %llu admission rounds\n",
                  state.sampling_rate,
                  state.mode == ReleaseMode::kSmc ? "smc" : "dp",
                  state.scheduler == BatchScheduler::kTaskGraph ? "graph"
                                                                : "barrier",
                  static_cast<unsigned long long>(
                      state.client->num_batches()));
      std::printf(
          "scheduler: %llu graphs run; %llu steals, %llu local pops, "
          "%llu urgent pops, %llu backlog pops; parked high-water %.0f\n",
          counter("scheduler.graphs_run"), counter("scheduler.steals"),
          counter("scheduler.local_pops"), counter("scheduler.urgent_pops"),
          counter("scheduler.backlog_pops"),
          reg.GetGauge("scheduler.parked_peak")->Value());
      const unsigned long long doorbells = counter("rpc.doorbell_batches");
      if (doorbells > 0 || !state.remote_endpoints.empty()) {
        std::printf(
            "transport: %llu doorbell batches (%.2f frames/doorbell); "
            "%llu bytes sent, %llu received\n",
            doorbells,
            doorbells > 0 ? static_cast<double>(
                                counter("rpc.coalesced_calls")) /
                                static_cast<double>(doorbells)
                          : 0.0,
            counter("rpc.client.bytes_sent"),
            counter("rpc.client.bytes_received"));
      }
      const unsigned long long rows_scanned = counter("storage.rows_scanned");
      const double mapped_bytes = reg.GetGauge("storage.bytes_mapped")->Value();
      if (rows_scanned > 0 || mapped_bytes > 0.0) {
        std::printf(
            "storage: %llu rows scanned (%s kernel); %.1f MiB mmap-resident\n",
            rows_scanned, ScanBackendName(ActiveScanBackend()),
            mapped_bytes / (1024.0 * 1024.0));
      }
      continue;
    }

    if (cmd == "stats") {
      std::string prefix;
      in >> prefix;  // optional
      const std::vector<obs::MetricSample> samples =
          obs::MetricRegistry::Global().Snapshot(prefix);
      if (samples.empty()) {
        std::printf("no metrics%s%s recorded yet\n",
                    prefix.empty() ? "" : " under ", prefix.c_str());
        continue;
      }
      for (const obs::MetricSample& s : samples) {
        switch (s.kind) {
          case obs::MetricSample::Kind::kCounter:
            std::printf("  %-32s %.0f\n", s.name.c_str(), s.value);
            break;
          case obs::MetricSample::Kind::kGauge:
            std::printf("  %-32s %g (gauge)\n", s.name.c_str(), s.value);
            break;
          case obs::MetricSample::Kind::kHistogram:
            std::printf(
                "  %-32s n=%.0f p50=%.3gms p95=%.3gms p99=%.3gms "
                "p999=%.3gms\n",
                s.name.c_str(), s.value, s.p50 * 1e3, s.p95 * 1e3,
                s.p99 * 1e3, s.p999 * 1e3);
            break;
        }
      }
      continue;
    }

    if (cmd == "trace") {
      std::string sub;
      in >> sub;
      if (sub == "on") {
        obs::TraceRecorder::Global().SetEnabled(true);
        std::printf("tracing on (%zu-span ring)\n",
                    obs::TraceRecorder::Global().capacity());
      } else if (sub == "off") {
        obs::TraceRecorder::Global().SetEnabled(false);
        std::printf("tracing off (%zu spans held, %llu dropped)\n",
                    obs::TraceRecorder::Global().size(),
                    static_cast<unsigned long long>(
                        obs::TraceRecorder::Global().dropped()));
      } else if (sub == "export") {
        std::string path;
        if (!(in >> path)) {
          std::printf("usage: trace export <file>\n");
          continue;
        }
        Status st = obs::TraceRecorder::Global().ExportChromeTrace(path);
        if (!st.ok()) {
          std::printf("error: %s\n", st.ToString().c_str());
          continue;
        }
        std::printf("wrote %zu spans to %s (load in Perfetto or "
                    "chrome://tracing)\n",
                    obs::TraceRecorder::Global().size(), path.c_str());
      } else {
        std::printf("usage: trace on|off|export <file>\n");
      }
      continue;
    }

    if (cmd == "audit") {
      if (!state.client) {
        std::printf("no federation open\n");
        continue;
      }
      std::string analyst;
      if (!(in >> analyst)) {
        std::printf("usage: audit <analyst>\n");
        continue;
      }
      const std::vector<obs::BudgetAuditLog::Record> records =
          state.client->audit_log().ForAnalyst(analyst);
      if (records.empty()) {
        std::printf("no audit records for '%s'\n", analyst.c_str());
        continue;
      }
      for (const auto& r : records) {
        std::printf("  #%-6llu seq=%-6llu %-8s eps=%.6f delta=%.8f\n",
                    static_cast<unsigned long long>(r.index),
                    static_cast<unsigned long long>(r.seq),
                    obs::BudgetAuditLog::KindName(r.kind), r.epsilon,
                    r.delta);
      }
      continue;
    }

    if (cmd == "loglevel") {
      std::string name;
      if (!(in >> name)) {
        std::printf("loglevel is %s\n", LogLevelName(GetLogLevel()));
        continue;
      }
      LogLevel level;
      if (!LogLevelFromName(name, &level)) {
        std::printf("usage: loglevel debug|info|warn|error\n");
        continue;
      }
      SetLogLevel(level);
      std::printf("loglevel set to %s\n", LogLevelName(level));
      continue;
    }

    if (cmd == "groupby") {
      if (!state.client) {
        std::printf("no federation open\n");
        continue;
      }
      long gdim;
      std::string aggword;
      if (!(in >> gdim >> aggword)) {
        std::printf("usage: groupby <dim> count|sum [<dim lo hi> ...]\n");
        continue;
      }
      Result<Aggregation> agg = ParseAgg(aggword);
      if (!agg.ok()) {
        std::printf("%s\n", agg.status().ToString().c_str());
        continue;
      }
      Result<RangeQuery> base = ParseQuery(*agg, &in);
      GroupByOptions gbo;
      gbo.group_dim = static_cast<size_t>(gdim);
      // Derived workloads drive the orchestrator directly; RunJob
      // serializes that into the client's admission sequence (the
      // orchestrator itself is not thread-safe).
      Result<GroupByResult> grouped = Status::Internal("groupby did not run");
      Status job = state.client->RunJob([&](QueryOrchestrator& orch) {
        grouped = PrivateGroupBy(&orch, *base, gbo);
      });
      if (!job.ok()) {
        std::printf("error: %s\n", job.ToString().c_str());
        continue;
      }
      if (!grouped.ok()) {
        std::printf("error: %s\n", grouped.status().ToString().c_str());
        continue;
      }
      for (const auto& b : grouped->buckets) {
        std::printf("  %lld: %.0f\n", static_cast<long long>(b.group_value),
                    b.estimate);
      }
      std::printf("(parallel composition: eps=%.4f for all %zu buckets)\n",
                  grouped->spent.epsilon, grouped->buckets.size());
      continue;
    }

    bool exact = cmd == "exact";
    std::string aggword = cmd;
    if (exact && !(in >> aggword)) {
      std::printf("usage: exact count|sum|sumsq <dim lo hi> ...\n");
      continue;
    }
    Result<Aggregation> agg = ParseAgg(aggword);
    if (!agg.ok()) {
      std::printf("unknown command '%s' (try `help`)\n", cmd.c_str());
      continue;
    }
    if (!state.client) {
      std::printf("no federation open\n");
      continue;
    }
    Result<RangeQuery> q = ParseQuery(*agg, &in);
    if (!q.ok()) {
      std::printf("error: %s\n", q.status().ToString().c_str());
      continue;
    }
    QuerySpec spec;
    spec.analyst = kShellAnalyst;
    spec.query = std::move(q).value();
    if (exact) spec.kind = QueryKind::kExact;
    Result<QueryResponse> resp = state.client->Submit(std::move(spec)).Wait();
    if (!resp.ok()) {
      std::printf("error: %s\n", resp.status().ToString().c_str());
      continue;
    }
    PrintResponse(exact ? "exact" : "private", *resp);
  }
  return 0;
}

}  // namespace
}  // namespace fedaqp

int main() { return fedaqp::Run(); }
