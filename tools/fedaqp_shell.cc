// fedaqp_shell — an interactive driver for poking the private federation
// from a terminal or a script. Reads one command per line from stdin:
//
//   open adult|amazon <rows> <providers> [seed]    build a federation
//   budget <eps> <delta> <xi> <psi>                per-query + total grant
//   rate <sr>                                      sampling rate in (0,1)
//   mode dp|smc                                    release mode
//   threads <n> [shards]                           worker pool + per-provider
//                                                  scan shards on that pool
//   sched graph|barrier                            batch scheduler (task graph
//                                                  is the default)
//   serve <base_port>                              host the open federation's
//                                                  providers over TCP (one
//                                                  port per provider)
//   connect <host:port> [<host:port> ...]          coordinate remote providers
//   count|sum|sumsq <dim lo hi> [<dim lo hi> ...]  run a private query
//   exact count|sum|sumsq <dim lo hi> ...          plain-text baseline
//   batch <k> count|sum|sumsq <dim lo hi> ...      k copies as one batch
//   groupby <dim> count|sum <dim lo hi> ...        private group-by
//   schema                                         print dimensions
//   status                                         accountant state
//   help / quit
//
// Example session:
//   open adult 100000 4
//   rate 0.2
//   count 0 20 40
//   exact count 0 20 40
//   status

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/fedaqp.h"
#include "federation/derived.h"
#include "rpc/remote_endpoint.h"
#include "rpc/server.h"

namespace fedaqp {
namespace {

struct ShellState {
  std::unique_ptr<Federation> federation;
  std::unique_ptr<QueryOrchestrator> orchestrator;
  /// Local providers hosted over TCP (`serve`). Declared after
  /// `federation` so they stop before the providers they borrow die.
  std::vector<std::unique_ptr<RpcProviderServer>> servers;
  /// Remote providers this shell coordinates (`connect`). When non-empty
  /// the orchestrator runs over these instead of the local federation.
  std::vector<std::shared_ptr<ProviderEndpoint>> remote_endpoints;
  PrivacyBudget per_query{1.0, 1e-3};
  double xi = 100.0;
  double psi = 0.1;
  double sampling_rate = 0.2;
  ReleaseMode mode = ReleaseMode::kLocalDp;
  size_t num_threads = 1;
  size_t num_scan_shards = 1;
  BatchScheduler scheduler = BatchScheduler::kTaskGraph;

  Status Rebuild() {
    if (!federation && remote_endpoints.empty()) {
      return Status::FailedPrecondition(
          "no federation open (use `open` or `connect`)");
    }
    FederationConfig config;
    config.per_query_budget = per_query;
    config.sampling_rate = sampling_rate;
    config.mode = mode;
    config.total_xi = xi;
    config.total_psi = psi;
    config.num_threads = num_threads;
    config.num_scan_shards = num_scan_shards;
    config.scheduler = scheduler;
    FEDAQP_ASSIGN_OR_RETURN(
        QueryOrchestrator orch,
        remote_endpoints.empty()
            ? QueryOrchestrator::Create(federation->provider_ptrs(), config)
            : QueryOrchestrator::CreateFromEndpoints(remote_endpoints,
                                                     config));
    orchestrator = std::make_unique<QueryOrchestrator>(std::move(orch));
    return Status::OK();
  }
};

Result<RangeQuery> ParseQuery(Aggregation agg, std::istringstream* in) {
  std::vector<DimRange> ranges;
  long dim, lo, hi;
  while (*in >> dim >> lo >> hi) {
    ranges.push_back(DimRange{static_cast<size_t>(dim), lo, hi});
  }
  return RangeQuery(agg, std::move(ranges));
}

Result<Aggregation> ParseAgg(const std::string& word) {
  if (word == "count") return Aggregation::kCount;
  if (word == "sum") return Aggregation::kSum;
  if (word == "sumsq") return Aggregation::kSumSquares;
  return Status::InvalidArgument("unknown aggregation '" + word + "'");
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  open adult|amazon <rows> <providers> [seed]\n"
      "  budget <eps> <delta> <xi> <psi>\n"
      "  rate <sr>          mode dp|smc          threads <n> [scan_shards]\n"
      "  sched graph|barrier              batch scheduler (default: graph)\n"
      "  serve <base_port>                host providers over TCP\n"
      "  connect <host:port> [...]        coordinate remote providers\n"
      "  count|sum|sumsq <dim lo hi> [...]\n"
      "  exact count|sum|sumsq <dim lo hi> [...]\n"
      "  batch <k> count|sum|sumsq <dim lo hi> [...]\n"
      "  groupby <dim> count|sum <dim lo hi> [...]\n"
      "  schema   status   help   quit\n");
}

int Run() {
  ShellState state;
  std::string line;
  std::printf("fedaqp shell — `help` for commands\n");
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
      continue;
    }

    if (cmd == "open") {
      std::string dataset;
      size_t rows = 0, providers = 4;
      uint64_t seed = 1;
      in >> dataset >> rows >> providers;
      in >> seed;
      SyntheticConfig cfg;
      std::vector<size_t> tensor_dims;
      if (dataset == "adult") {
        cfg = AdultConfig(rows, seed);
        tensor_dims = AdultTensorDims();
      } else if (dataset == "amazon") {
        cfg = AmazonConfig(rows, seed);
        tensor_dims = AmazonTensorDims();
      } else {
        std::printf("unknown dataset '%s' (adult|amazon)\n", dataset.c_str());
        continue;
      }
      Result<std::vector<Table>> parts =
          GenerateFederatedTensors(cfg, tensor_dims, providers);
      if (!parts.ok()) {
        std::printf("error: %s\n", parts.status().ToString().c_str());
        continue;
      }
      size_t cells = 0;
      for (const auto& t : *parts) cells += t.num_rows();
      FederationOptions opts;
      opts.cluster_capacity =
          std::max<size_t>(256, cells / providers / 50);
      opts.layout = ClusterLayout::kShuffled;
      opts.n_min = 8;
      opts.seed = seed;
      Result<std::unique_ptr<Federation>> fed =
          Federation::Open(std::move(parts).value(), opts);
      if (!fed.ok()) {
        std::printf("error: %s\n", fed.status().ToString().c_str());
        continue;
      }
      // Stop serving BEFORE replacing the federation: the servers hold
      // raw pointers into the old federation's providers.
      state.servers.clear();
      state.orchestrator.reset();
      state.federation = std::move(fed).value();
      // A locally opened federation takes over from any remote session.
      state.remote_endpoints.clear();
      Status st = state.Rebuild();
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        continue;
      }
      std::printf("opened %s: %zu providers, %zu cells, schema: %s\n",
                  dataset.c_str(), providers, cells,
                  state.federation->schema().ToString().c_str());
      continue;
    }

    if (cmd == "budget") {
      in >> state.per_query.epsilon >> state.per_query.delta >> state.xi >>
          state.psi;
      Status st = state.Rebuild();
      std::printf("%s\n", st.ok() ? "ok (accountant reset)"
                                  : st.ToString().c_str());
      continue;
    }
    if (cmd == "rate") {
      in >> state.sampling_rate;
      Status st = state.Rebuild();
      std::printf("%s\n", st.ok() ? "ok (accountant reset)"
                                  : st.ToString().c_str());
      continue;
    }
    if (cmd == "mode") {
      std::string m;
      in >> m;
      state.mode = m == "smc" ? ReleaseMode::kSmc : ReleaseMode::kLocalDp;
      Status st = state.Rebuild();
      std::printf("%s\n", st.ok() ? "ok (accountant reset)"
                                  : st.ToString().c_str());
      continue;
    }
    if (cmd == "threads") {
      in >> state.num_threads;
      if (state.num_threads == 0) state.num_threads = 1;
      // Optional second arg: intra-provider scan shards sharing the pool.
      size_t shards = 0;
      if (in >> shards) state.num_scan_shards = shards == 0 ? 1 : shards;
      Status st = state.Rebuild();
      std::printf("%s\n", st.ok() ? "ok (accountant reset)"
                                  : st.ToString().c_str());
      continue;
    }
    if (cmd == "sched") {
      std::string which;
      in >> which;
      if (which == "graph") {
        state.scheduler = BatchScheduler::kTaskGraph;
      } else if (which == "barrier") {
        state.scheduler = BatchScheduler::kPhaseBarrier;
      } else {
        std::printf("usage: sched graph|barrier\n");
        continue;
      }
      Status st = state.Rebuild();
      std::printf("%s\n", st.ok() ? "ok (accountant reset)"
                                  : st.ToString().c_str());
      continue;
    }
    if (cmd == "serve") {
      if (!state.federation) {
        std::printf("no federation open\n");
        continue;
      }
      long base_port = 0;
      if (!(in >> base_port) || base_port < 0 || base_port > 65535) {
        std::printf("usage: serve <base_port>  (0 = ephemeral ports)\n");
        continue;
      }
      // Fresh `serve` replaces any previous one (old ports close).
      state.servers.clear();
      Result<std::vector<std::unique_ptr<RpcProviderServer>>> servers =
          state.federation->Serve(static_cast<uint16_t>(base_port));
      if (!servers.ok()) {
        std::printf("error: %s\n", servers.status().ToString().c_str());
        continue;
      }
      state.servers = std::move(servers).value();
      for (size_t i = 0; i < state.servers.size(); ++i) {
        std::printf("  provider %zu listening on port %u\n", i,
                    state.servers[i]->port());
      }
      std::printf("serving; connect from another shell with:\n  connect");
      for (const auto& s : state.servers) {
        std::printf(" 127.0.0.1:%u", s->port());
      }
      std::printf("\n");
      continue;
    }

    if (cmd == "connect") {
      std::vector<std::string> host_ports;
      std::string hp;
      while (in >> hp) host_ports.push_back(hp);
      if (host_ports.empty()) {
        std::printf("usage: connect <host:port> [<host:port> ...]\n");
        continue;
      }
      Result<std::vector<std::shared_ptr<ProviderEndpoint>>> endpoints =
          RemoteEndpoint::ConnectAll(host_ports);
      if (!endpoints.ok()) {
        std::printf("error: %s\n", endpoints.status().ToString().c_str());
        continue;
      }
      state.remote_endpoints = std::move(endpoints).value();
      Status st = state.Rebuild();
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        state.remote_endpoints.clear();
        continue;
      }
      std::printf("connected to %zu remote providers, schema: %s\n",
                  state.remote_endpoints.size(),
                  state.orchestrator->schema().ToString().c_str());
      continue;
    }

    if (cmd == "batch") {
      if (!state.orchestrator) {
        std::printf("no federation open\n");
        continue;
      }
      size_t k = 0;
      std::string aggword;
      if (!(in >> k >> aggword) || k == 0) {
        std::printf("usage: batch <k> count|sum|sumsq <dim lo hi> ...\n");
        continue;
      }
      Result<Aggregation> agg = ParseAgg(aggword);
      if (!agg.ok()) {
        std::printf("%s\n", agg.status().ToString().c_str());
        continue;
      }
      Result<RangeQuery> q = ParseQuery(*agg, &in);
      if (!q.ok()) {
        std::printf("error: %s\n", q.status().ToString().c_str());
        continue;
      }
      std::vector<RangeQuery> queries(k, *q);
      std::vector<BatchOutcome> outcomes =
          state.orchestrator->ExecuteBatch(queries);
      // Per-query latency from the orchestrator's per-phase-max
      // breakdown (providers run in parallel within a phase), plus the
      // batch totals: the sum of per-query simulated critical paths and
      // the measured wall/critical-path of the batch as scheduled.
      size_t answered = 0;
      double simulated_total = 0.0;
      for (size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].ok()) {
          const QueryBreakdown& b = outcomes[i].response.breakdown;
          std::printf(
              "  [%zu] %.1f  (%.2f ms simulated: providers %.2f, "
              "aggregator %.2f, network %.2f)\n",
              i, outcomes[i].response.estimate, b.TotalSeconds() * 1e3,
              b.provider_compute_seconds * 1e3,
              b.aggregator_compute_seconds * 1e3, b.network_seconds * 1e3);
          simulated_total += b.TotalSeconds();
          ++answered;
        } else {
          std::printf("  [%zu] error: %s\n", i,
                      outcomes[i].status.ToString().c_str());
        }
      }
      const BatchRunStats& stats = state.orchestrator->last_batch_stats();
      std::printf(
          "batch: %zu/%zu answered; %.2f ms simulated critical path "
          "(sum over queries); %.2f ms wall, %.2f ms critical path as "
          "scheduled\n",
          answered, outcomes.size(), simulated_total * 1e3,
          stats.wall_seconds * 1e3, stats.critical_path_seconds * 1e3);
      continue;
    }

    if (cmd == "schema") {
      if (!state.orchestrator) {
        std::printf("no federation open\n");
        continue;
      }
      const Schema& s = state.orchestrator->schema();
      for (size_t d = 0; d < s.num_dims(); ++d) {
        std::printf("  [%zu] %s in [0, %lld)\n", d, s.dim(d).name.c_str(),
                    static_cast<long long>(s.dim(d).domain_size));
      }
      continue;
    }

    if (cmd == "status") {
      if (!state.orchestrator) {
        std::printf("no federation open\n");
        continue;
      }
      const PrivacyAccountant& acct = state.orchestrator->accountant();
      std::printf("spent (eps=%.4f, delta=%.6f) of (xi=%.2f, psi=%.4f); "
                  "%zu queries; sr=%.2f; mode=%s\n",
                  acct.spent().epsilon, acct.spent().delta,
                  acct.total().epsilon, acct.total().delta,
                  acct.num_charges(), state.sampling_rate,
                  state.mode == ReleaseMode::kSmc ? "smc" : "dp");
      continue;
    }

    if (cmd == "groupby") {
      if (!state.orchestrator) {
        std::printf("no federation open\n");
        continue;
      }
      long gdim;
      std::string aggword;
      if (!(in >> gdim >> aggword)) {
        std::printf("usage: groupby <dim> count|sum [<dim lo hi> ...]\n");
        continue;
      }
      Result<Aggregation> agg = ParseAgg(aggword);
      if (!agg.ok()) {
        std::printf("%s\n", agg.status().ToString().c_str());
        continue;
      }
      Result<RangeQuery> base = ParseQuery(*agg, &in);
      GroupByOptions gbo;
      gbo.group_dim = static_cast<size_t>(gdim);
      Result<GroupByResult> grouped =
          PrivateGroupBy(state.orchestrator.get(), *base, gbo);
      if (!grouped.ok()) {
        std::printf("error: %s\n", grouped.status().ToString().c_str());
        continue;
      }
      for (const auto& b : grouped->buckets) {
        std::printf("  %lld: %.0f\n", static_cast<long long>(b.group_value),
                    b.estimate);
      }
      std::printf("(parallel composition: eps=%.4f for all %zu buckets)\n",
                  grouped->spent.epsilon, grouped->buckets.size());
      continue;
    }

    bool exact = cmd == "exact";
    std::string aggword = cmd;
    if (exact && !(in >> aggword)) {
      std::printf("usage: exact count|sum|sumsq <dim lo hi> ...\n");
      continue;
    }
    Result<Aggregation> agg = ParseAgg(aggword);
    if (!agg.ok()) {
      std::printf("unknown command '%s' (try `help`)\n", cmd.c_str());
      continue;
    }
    if (!state.orchestrator) {
      std::printf("no federation open\n");
      continue;
    }
    Result<RangeQuery> q = ParseQuery(*agg, &in);
    if (!q.ok()) {
      std::printf("error: %s\n", q.status().ToString().c_str());
      continue;
    }
    Result<QueryResponse> resp = exact ? state.orchestrator->ExecuteExact(*q)
                                       : state.orchestrator->Execute(*q);
    if (!resp.ok()) {
      std::printf("error: %s\n", resp.status().ToString().c_str());
      continue;
    }
    std::printf("%s = %.1f", exact ? "exact" : "private", resp->estimate);
    if (!exact && resp->stderr_estimate > 0.0) {
      std::printf("  (stderr %.1f)", resp->stderr_estimate);
    }
    std::printf("  [%.2f ms, %zu rows scanned]\n",
                resp->breakdown.TotalSeconds() * 1e3,
                resp->breakdown.rows_scanned);
  }
  return 0;
}

}  // namespace
}  // namespace fedaqp

int main() { return fedaqp::Run(); }
