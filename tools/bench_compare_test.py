#!/usr/bin/env python3
"""Smoke tests for bench_compare.py's gate mode — exit codes only.

CI invokes this directly (python3 tools/bench_compare_test.py); it
builds throwaway artifact directories under a tempdir and asserts the
exit-code contract: 0 clean / tolerated-baseline, 3 divergence or
broken current artifact, 2 unusable current directory. Stdout/stderr of
the tool is swallowed unless a case fails. No third-party dependencies.
"""

import json
import os
import subprocess
import sys
import tempfile

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "bench_compare.py")


def write(dirpath, name, payload):
    os.makedirs(dirpath, exist_ok=True)
    path = os.path.join(dirpath, name)
    with open(path, "w", encoding="utf-8") as f:
        if isinstance(payload, str):
            f.write(payload)
        else:
            json.dump(payload, f)
    return path


def run(*argv):
    return subprocess.run([sys.executable, TOOL, *argv],
                          capture_output=True, text=True)


CASES = []


def case(name):
    def wrap(fn):
        CASES.append((name, fn))
        return fn
    return wrap


GOOD = {"bit_identical": 1, "ledgers_match": 1,
        "answers_checksum": 12345, "wall_seconds": 0.5}


@case("gate passes on identical clean artifacts")
def _(tmp):
    write(f"{tmp}/prev", "BENCH_a.json", GOOD)
    write(f"{tmp}/curr", "BENCH_a.json", GOOD)
    return run("--gate", f"{tmp}/prev", f"{tmp}/curr"), 0


@case("checksum divergence fails with exit 3")
def _(tmp):
    write(f"{tmp}/prev", "BENCH_a.json", GOOD)
    write(f"{tmp}/curr", "BENCH_a.json", dict(GOOD, answers_checksum=999))
    return run("--gate", f"{tmp}/prev", f"{tmp}/curr"), 3


@case("determinism flag 0 fails with exit 3")
def _(tmp):
    write(f"{tmp}/prev", "BENCH_a.json", GOOD)
    write(f"{tmp}/curr", "BENCH_a.json", dict(GOOD, bit_identical=0))
    return run("--gate", f"{tmp}/prev", f"{tmp}/curr"), 3


@case("missing previous directory is tolerated")
def _(tmp):
    write(f"{tmp}/curr", "BENCH_a.json", GOOD)
    return run("--gate", f"{tmp}/no-such-dir", f"{tmp}/curr"), 0


@case("empty previous directory is tolerated")
def _(tmp):
    os.makedirs(f"{tmp}/prev")
    write(f"{tmp}/curr", "BENCH_a.json", GOOD)
    return run("--gate", f"{tmp}/prev", f"{tmp}/curr"), 0


@case("malformed previous file is tolerated")
def _(tmp):
    write(f"{tmp}/prev", "BENCH_a.json", "{truncated artifact")
    write(f"{tmp}/curr", "BENCH_a.json", GOOD)
    return run("--gate", f"{tmp}/prev", f"{tmp}/curr"), 0


@case("non-object previous file is tolerated")
def _(tmp):
    write(f"{tmp}/prev", "BENCH_a.json", "[1, 2, 3]")
    write(f"{tmp}/curr", "BENCH_a.json", GOOD)
    return run("--gate", f"{tmp}/prev", f"{tmp}/curr"), 0


@case("malformed current file fails with exit 3, not a crash")
def _(tmp):
    write(f"{tmp}/prev", "BENCH_a.json", GOOD)
    write(f"{tmp}/curr", "BENCH_a.json", "not json at all")
    return run("--gate", f"{tmp}/prev", f"{tmp}/curr"), 3


@case("NaN checksum on both sides is missing, not divergence")
def _(tmp):
    nan = dict(GOOD)
    del nan["answers_checksum"]
    write(f"{tmp}/prev", "BENCH_a.json",
          json.dumps(nan)[:-1] + ', "answers_checksum": NaN}')
    write(f"{tmp}/curr", "BENCH_a.json",
          json.dumps(nan)[:-1] + ', "answers_checksum": NaN}')
    return run("--gate", f"{tmp}/prev", f"{tmp}/curr"), 0


@case("NaN determinism flag fails with exit 3")
def _(tmp):
    base = dict(GOOD)
    del base["bit_identical"]
    write(f"{tmp}/curr", "BENCH_a.json",
          json.dumps(base)[:-1] + ', "bit_identical": NaN}')
    return run("--gate", f"{tmp}/no-prev", f"{tmp}/curr"), 3


# A BENCH_serving.json-shaped artifact: per-class latency quantiles and
# achieved rates are timing-only; the two checksums fingerprint the DWRR
# admission schedule and the answers.
SERVING = {"bit_identical": 1, "ledgers_match": 1,
           "answers_checksum": "111", "fair_admission_checksum": "222",
           "l0_offered_qps": 50.0, "l0_achieved_qps": 49.2,
           "l0_high_p50_seconds": 0.002, "l0_high_p99_seconds": 0.011,
           "l0_low_p999_seconds": 0.094, "l0_evicted": 3}


@case("serving latency/qps swings never trip the gate")
def _(tmp):
    noisy = dict(SERVING, l0_achieved_qps=7.5, l0_high_p50_seconds=0.9,
                 l0_high_p99_seconds=4.2, l0_low_p999_seconds=31.0,
                 l0_evicted=480)
    write(f"{tmp}/prev", "BENCH_serving.json", SERVING)
    write(f"{tmp}/curr", "BENCH_serving.json", noisy)
    return run("--gate", f"{tmp}/prev", f"{tmp}/curr"), 0


@case("fair_admission_checksum divergence fails with exit 3")
def _(tmp):
    write(f"{tmp}/prev", "BENCH_serving.json", SERVING)
    write(f"{tmp}/curr", "BENCH_serving.json",
          dict(SERVING, fair_admission_checksum="999"))
    return run("--gate", f"{tmp}/prev", f"{tmp}/curr"), 3


@case("no current artifacts fails with exit 2")
def _(tmp):
    os.makedirs(f"{tmp}/curr")
    return run("--gate", f"{tmp}/prev", f"{tmp}/curr"), 2


@case("file mode diff on clean files exits 0")
def _(tmp):
    a = write(f"{tmp}/x", "BENCH_a.json", GOOD)
    b = write(f"{tmp}/y", "BENCH_a.json", dict(GOOD, wall_seconds=0.7))
    return run(a, b), 0


@case("file mode on unreadable input exits 2")
def _(tmp):
    a = write(f"{tmp}/x", "BENCH_a.json", GOOD)
    return run(a, f"{tmp}/does-not-exist.json"), 2


def main():
    failed = 0
    for name, fn in CASES:
        with tempfile.TemporaryDirectory() as tmp:
            proc, want = fn(tmp)
        if proc.returncode == want:
            print(f"PASS  {name}")
        else:
            failed += 1
            print(f"FAIL  {name}: exit {proc.returncode}, want {want}")
            sys.stdout.write(proc.stdout)
            sys.stderr.write(proc.stderr)
    print(f"\n{len(CASES) - failed}/{len(CASES)} passed")
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
