#!/usr/bin/env python3
"""Collect BENCH_*.json snapshots across PRs and plot the perf trajectory.

Every bench emits a flat BENCH_<name>.json (see bench/bench_util.h), and CI
uploads them as the `bench-json` artifact per run — so the repository's
whole perf history exists as a sequence of snapshots. This tool assembles
that sequence and renders it:

    # Local directories, one per snapshot (label = directory name):
    tools/bench_history.py pr4/ pr5/ build/

    # Pull the artifact history straight from GitHub Actions
    # (GITHUB_TOKEN must be set; downloads into --cache):
    tools/bench_history.py --github owner/repo --limit 20

Output: a per-metric table across snapshots with an ASCII trend line,
optionally --csv for spreadsheets and --plot PNG charts when matplotlib
is installed (pure-stdlib otherwise). Exits 0 on success, 2 on unreadable
input — trends are informational, never a gate.
"""

import argparse
import csv
import io
import json
import os
import re
import sys
import urllib.request
import zipfile


def fail(msg):
    print(f"bench_history: {msg}", file=sys.stderr)
    sys.exit(2)


def load_bench_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot read {path}: {e}")
    if not isinstance(data, dict):
        fail(f"{path} is not a flat JSON object")
    return data


def load_snapshot_dir(path):
    """Returns {bench_name: {metric: value}} for one snapshot directory."""
    snapshot = {}
    for entry in sorted(os.listdir(path)):
        if not (entry.startswith("BENCH_") and entry.endswith(".json")):
            continue
        data = load_bench_file(os.path.join(path, entry))
        name = data.get("bench", entry[len("BENCH_"):-len(".json")])
        snapshot[name] = data
    return snapshot


def collect_local(sources):
    """[(label, {bench: {metric: value}})] from files and directories."""
    snapshots = []
    for source in sources:
        if os.path.isdir(source):
            label = os.path.basename(os.path.normpath(source))
            snapshot = load_snapshot_dir(source)
            if not snapshot:
                print(f"bench_history: no BENCH_*.json in {source}",
                      file=sys.stderr)
                continue
            snapshots.append((label, snapshot))
        elif os.path.isfile(source):
            data = load_bench_file(source)
            name = data.get("bench", os.path.basename(source))
            snapshots.append((os.path.basename(source), {name: data}))
        else:
            fail(f"{source}: no such file or directory")
    return snapshots


# ------------------------------------------------------------------ github --


def github_api(url, token, raw=False):
    req = urllib.request.Request(url)
    req.add_header("Authorization", f"Bearer {token}")
    req.add_header("Accept", "application/vnd.github+json")
    req.add_header("User-Agent", "bench-history")
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            body = resp.read()
    except Exception as e:  # noqa: BLE001 — any transport failure is fatal
        fail(f"GitHub API request failed ({url}): {e}")
    return body if raw else json.loads(body)


def collect_github(repo, artifact_name, limit, cache):
    """Downloads the latest `limit` bench-json artifacts of `repo` (oldest
    first) into `cache` and loads them as snapshots labelled by run
    number."""
    token = os.environ.get("GITHUB_TOKEN", "")
    if not token:
        fail("--github needs GITHUB_TOKEN in the environment")
    base = f"https://api.github.com/repos/{repo}"
    listing = github_api(
        f"{base}/actions/artifacts?name={artifact_name}&per_page={limit}",
        token)
    artifacts = [a for a in listing.get("artifacts", []) if not a["expired"]]
    artifacts.sort(key=lambda a: a["created_at"])
    snapshots = []
    os.makedirs(cache, exist_ok=True)
    for artifact in artifacts[-limit:]:
        run = artifact.get("workflow_run", {}).get("id", artifact["id"])
        label = f"run{run}"
        target = os.path.join(cache, label)
        if not os.path.isdir(target):
            blob = github_api(artifact["archive_download_url"], token,
                              raw=True)
            os.makedirs(target, exist_ok=True)
            with zipfile.ZipFile(io.BytesIO(blob)) as zf:
                zf.extractall(target)
        snapshot = load_snapshot_dir(target)
        if snapshot:
            snapshots.append((label, snapshot))
    return snapshots


# ---------------------------------------------------------------- rendering --

SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values):
    numeric = [v for v in values if v is not None]
    if not numeric:
        return ""
    lo, hi = min(numeric), max(numeric)
    span = hi - lo
    out = []
    for v in values:
        if v is None:
            out.append(" ")
        elif span == 0:
            out.append(SPARK_CHARS[0])
        else:
            idx = int((v - lo) / span * (len(SPARK_CHARS) - 1))
            out.append(SPARK_CHARS[idx])
    return "".join(out)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def fmt(v):
    if v is None:
        return "-"
    if is_number(v):
        if isinstance(v, int) or float(v).is_integer():
            return str(int(v))
        return f"{v:.5g}"
    return str(v)


def build_rows(snapshots, metric_filter):
    """[(bench, metric, [value per snapshot])] for numeric metrics."""
    pattern = re.compile(metric_filter) if metric_filter else None
    series = {}
    for idx, (_, snapshot) in enumerate(snapshots):
        for bench, metrics in snapshot.items():
            for key, value in metrics.items():
                if key == "bench" or not is_number(value):
                    continue
                if pattern and not pattern.search(f"{bench}.{key}"):
                    continue
                series.setdefault((bench, key),
                                  [None] * len(snapshots))[idx] = value
    rows = []
    for (bench, key), values in sorted(series.items()):
        rows.append((bench, key, values))
    return rows


def print_table(snapshots, rows):
    labels = [label for label, _ in snapshots]
    headers = ["bench", "metric"] + labels + ["trend"]
    cells = []
    for bench, key, values in rows:
        cells.append([bench, key] + [fmt(v) for v in values]
                     + [sparkline(values)])
    widths = [max(len(headers[i]), *(len(r[i]) for r in cells))
              if cells else len(headers[i]) for i in range(len(headers))]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in cells:
        print("  ".join(v.ljust(w) for v, w in zip(row, widths)))


def write_csv(path, snapshots, rows):
    labels = [label for label, _ in snapshots]
    with open(path, "w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        writer.writerow(["bench", "metric"] + labels)
        for bench, key, values in rows:
            writer.writerow([bench, key] + [v if v is not None else ""
                                            for v in values])
    print(f"wrote {path}")


def write_plot(path, snapshots, rows):
    try:
        import matplotlib  # noqa: PLC0415 — optional dependency
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt  # noqa: PLC0415
    except ImportError:
        print("bench_history: matplotlib not available; skipping --plot",
              file=sys.stderr)
        return
    labels = [label for label, _ in snapshots]
    benches = sorted({bench for bench, _, _ in rows})
    fig, axes = plt.subplots(len(benches), 1,
                             figsize=(max(6, 1.2 * len(labels)),
                                      3 * len(benches)),
                             squeeze=False)
    for ax, bench in zip(axes[:, 0], benches):
        for b, key, values in rows:
            if b != bench:
                continue
            xs = [i for i, v in enumerate(values) if v is not None]
            ys = [v for v in values if v is not None]
            ax.plot(xs, ys, marker="o", label=key)
        ax.set_title(bench)
        ax.set_xticks(range(len(labels)))
        ax.set_xticklabels(labels, rotation=30, ha="right", fontsize=8)
        ax.legend(fontsize=7)
        ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(path, dpi=120)
    print(f"wrote {path}")


def main():
    parser = argparse.ArgumentParser(
        description="Assemble BENCH_*.json snapshots into a perf trajectory.")
    parser.add_argument("sources", nargs="*",
                        help="snapshot directories (or single BENCH files), "
                             "oldest first")
    parser.add_argument("--github", metavar="OWNER/REPO",
                        help="pull bench-json artifacts from GitHub Actions "
                             "(needs GITHUB_TOKEN)")
    parser.add_argument("--artifact", default="bench-json",
                        help="artifact name to pull (default: bench-json)")
    parser.add_argument("--limit", type=int, default=20,
                        help="max GitHub runs to pull (default: 20)")
    parser.add_argument("--cache", default=".bench-history",
                        help="download cache for --github")
    parser.add_argument("--metrics", default="",
                        help="regex over 'bench.metric' to select series")
    parser.add_argument("--csv", help="also write the table as CSV")
    parser.add_argument("--plot", help="also write PNG charts (matplotlib)")
    args = parser.parse_args()

    snapshots = []
    if args.github:
        snapshots += collect_github(args.github, args.artifact, args.limit,
                                    args.cache)
    snapshots += collect_local(args.sources)
    if not snapshots:
        fail("no snapshots (pass directories with BENCH_*.json or --github)")

    rows = build_rows(snapshots, args.metrics)
    if not rows:
        fail("no numeric metrics matched")
    print_table(snapshots, rows)
    if args.csv:
        write_csv(args.csv, snapshots, rows)
    if args.plot:
        write_plot(args.plot, snapshots, rows)


if __name__ == "__main__":
    main()
