#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file exported by the fedaqp trace
recorder (obs/trace.h) and prints a per-phase duration table.

Checks, any failure exits non-zero:
  * the file parses and carries a `traceEvents` list
  * every event has the required fields (name, cat, ph, ts, pid, tid)
  * `ph` is only ever B or E
  * timestamps are globally non-decreasing (the exporter ts-sorts)
  * per (pid, tid), B/E events are balanced and properly nested: every E
    closes the most recent open B with the same name (LIFO), and nothing
    is left open at the end

Usage: trace_summary.py <trace.json>
"""

import json
import sys
from collections import defaultdict


REQUIRED_FIELDS = ("name", "cat", "ph", "ts", "pid", "tid")


def fail(msg):
    print(f"trace_summary: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def phase_of(event):
    """Aggregation key for the duration table: task spans ("q3/estimate/p1",
    TaskKey::ToString) fold by their phase component; everything else folds
    by its full name."""
    if event["cat"] == "task":
        parts = event["name"].split("/")
        if len(parts) >= 2:
            return f"task/{parts[1]}"
    return event["name"]


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("no `traceEvents` list")
    if not events:
        fail("empty trace (no events recorded)")

    last_ts = None
    # (pid, tid) -> stack of open (name, ts) begin events.
    open_stacks = defaultdict(list)
    # phase -> [total_us, count]
    durations = defaultdict(lambda: [0.0, 0])

    for i, ev in enumerate(events):
        for field in REQUIRED_FIELDS:
            if field not in ev:
                fail(f"event {i} missing field `{field}`: {ev}")
        ph = ev["ph"]
        if ph not in ("B", "E"):
            fail(f"event {i} has ph={ph!r} (only B/E expected)")
        ts = ev["ts"]
        if not isinstance(ts, (int, float)):
            fail(f"event {i} has non-numeric ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            fail(f"event {i} ts {ts} < preceding ts {last_ts} "
                 "(timestamps must be non-decreasing)")
        last_ts = ts

        key = (ev["pid"], ev["tid"])
        stack = open_stacks[key]
        if ph == "B":
            stack.append((ev["name"], ev["cat"], ts))
        else:
            if not stack:
                fail(f"event {i}: E with no open B on pid/tid {key}: {ev}")
            name, cat, begin_ts = stack.pop()
            if name != ev["name"]:
                fail(f"event {i}: E for {ev['name']!r} but innermost open "
                     f"span on pid/tid {key} is {name!r} (improper nesting)")
            agg = phase_of({"name": name, "cat": cat})
            durations[agg][0] += ts - begin_ts
            durations[agg][1] += 1

    dangling = {k: v for k, v in open_stacks.items() if v}
    if dangling:
        detail = "; ".join(
            f"pid/tid {k}: {[s[0] for s in v]}" for k, v in dangling.items())
        fail(f"unbalanced trace, spans left open: {detail}")

    n_begin = sum(1 for e in events if e["ph"] == "B")
    print(f"trace_summary: OK — {len(events)} events, {n_begin} spans, "
          f"{len(open_stacks)} threads")
    print(f"  {'phase':<28} {'count':>7} {'total ms':>10} {'mean us':>10}")
    for phase in sorted(durations, key=lambda p: -durations[p][0]):
        total_us, count = durations[phase]
        print(f"  {phase:<28} {count:>7} {total_us / 1e3:>10.2f} "
              f"{total_us / count:>10.1f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
