#!/usr/bin/env python3
"""Diff two BENCH_*.json files and print a per-metric delta table.

The benches emit flat JSON objects (see bench/bench_util.h BenchJson), so
successive PRs leave a perf trajectory. This tool makes that trajectory
readable:

    tools/bench_compare.py old/BENCH_pipeline_speedup.json \
                           new/BENCH_pipeline_speedup.json

For numeric metrics it prints old, new, absolute delta, and percent
change; string metrics print old -> new when they differ. Exits 0 on a
successful comparison (deltas are informational, not a gate), 2 on
unreadable input. No third-party dependencies.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, dict):
        print(f"bench_compare: {path} is not a flat JSON object",
              file=sys.stderr)
        sys.exit(2)
    return data


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def fmt(v):
    if is_number(v):
        if isinstance(v, int) or float(v).is_integer():
            return str(int(v))
        return f"{v:.6g}"
    return str(v)


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json files metric by metric.")
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument("--all", action="store_true",
                        help="also print unchanged metrics")
    args = parser.parse_args()

    old, new = load(args.old), load(args.new)
    keys = list(old.keys()) + [k for k in new.keys() if k not in old]

    rows = []
    for key in keys:
        a, b = old.get(key), new.get(key)
        if a is None or b is None:
            rows.append((key, fmt(a) if a is not None else "-",
                         fmt(b) if b is not None else "-", "added/removed", ""))
            continue
        if is_number(a) and is_number(b):
            delta = b - a
            if delta == 0 and not args.all:
                continue
            pct = f"{100.0 * delta / a:+.1f}%" if a != 0 else "n/a"
            rows.append((key, fmt(a), fmt(b), f"{delta:+.6g}", pct))
        else:
            if a == b and not args.all:
                continue
            rows.append((key, fmt(a), fmt(b),
                         "=" if a == b else f"{fmt(a)} -> {fmt(b)}", ""))

    if not rows:
        print("no metric changed")
        return

    headers = ("metric", "old", "new", "delta", "pct")
    widths = [max(len(headers[i]), max(len(r[i]) for r in rows))
              for i in range(5)]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(v.ljust(w) for v, w in zip(r, widths)))


if __name__ == "__main__":
    main()
