#!/usr/bin/env python3
"""Diff BENCH_*.json files, optionally gating on answer divergence.

The benches emit flat JSON objects (see bench/bench_util.h BenchJson), so
successive PRs leave a perf trajectory. This tool makes that trajectory
readable, and gives CI a correctness gate over it:

File mode — print a per-metric delta table:

    tools/bench_compare.py old/BENCH_pipeline_speedup.json \
                           new/BENCH_pipeline_speedup.json

For numeric metrics it prints old, new, absolute delta, and percent
change; string metrics print old -> new when they differ. Exits 0 on a
successful comparison (deltas are informational, not a gate), 2 on
unreadable input.

Gate mode — compare two directories of BENCH_*.json and FAIL only on
answer/ledger divergence, never on timing:

    tools/bench_compare.py --gate prev-bench-dir curr-bench-dir

Per bench present in the current directory the gate checks:
  * the bench's own recorded determinism verdicts: any `bit_identical`,
    `ledgers_match`, or `priority_*`-style 0/1 flag named in GATE_FLAGS
    that reads 0 is a failure;
  * every `*_checksum` key (answers_checksum, fair_admission_checksum,
    ...) against the previous run's file (matched by name): present in
    both but different means this PR changed the actual answers or a
    deterministic schedule — a correctness regression the timing deltas
    cannot excuse. Keys that carry timing or rate data (anything with a
    `seconds`, `qps`, `p50/p99/p999`, or `wall` component, e.g. the
    per-class latency quantiles BENCH_serving.json emits) are never
    checksum-compared, whatever their spelling — timing is trajectory
    data, not a gate.
A missing, empty, or malformed previous directory/file is reported and
tolerated (first run, new bench, expired or truncated artifact) — prior
artifacts are advisory, never a crash. A malformed *current* file is a
gate failure (exit 3): this CI run produced it, so something is broken
right now. NaN or null metrics are treated as missing, not as values —
NaN never equals itself, so comparing it raw would report phantom
divergence. Timing metrics are printed as the usual delta tables but
never fail the gate. Exits 0 when clean, 3 on divergence, 2 on
unreadable input in file mode or an unusable current directory. No
third-party dependencies.
"""

import argparse
import glob
import json
import math
import os
import sys

# 0/1 verdicts the emitting bench already computed; 0 means the bench saw
# divergence in-run (its own exit code should have caught it, the gate
# re-checks the recorded artifact so a swallowed exit code cannot hide it).
GATE_FLAGS = ("bit_identical", "ledgers_match")

# Substrings that mark a key as timing/rate data. Such keys are shown in
# the delta tables but can never gate — not even if a bench names one
# "*_checksum" by accident (latency is machine noise, not an answer).
TIMING_MARKERS = ("seconds", "qps", "p50", "p99", "p999", "wall",
                  "latency", "throughput")


def is_gated_checksum(key):
    """True for keys the gate compares bit-for-bit across runs."""
    lower = key.lower()
    if not lower.endswith("_checksum"):
        return False
    return not any(marker in lower for marker in TIMING_MARKERS)


def load(path, required=True):
    """Parse one BENCH_*.json. required=True exits 2 on failure (file
    mode / current artifacts must be present); required=False returns
    None so gate mode can decide how bad a broken file is."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        if required:
            sys.exit(2)
        return None
    if not isinstance(data, dict):
        print(f"bench_compare: {path} is not a flat JSON object",
              file=sys.stderr)
        if required:
            sys.exit(2)
        return None
    return data


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def is_missing(v):
    """None and NaN are both 'the bench did not produce this metric'.
    NaN must not reach comparisons: NaN != NaN, so a raw compare turns
    one broken metric into a phantom divergence on every run."""
    return v is None or (isinstance(v, float) and math.isnan(v))


def fmt(v):
    if is_number(v):
        if isinstance(v, int) or float(v).is_integer():
            return str(int(v))
        return f"{v:.6g}"
    return str(v)


def diff_rows(old, new, show_all=False):
    keys = list(old.keys()) + [k for k in new.keys() if k not in old]
    rows = []
    for key in keys:
        a, b = old.get(key), new.get(key)
        if is_missing(a) or is_missing(b):
            if is_missing(a) and is_missing(b) and not show_all:
                continue
            rows.append((key, fmt(a) if not is_missing(a) else "-",
                         fmt(b) if not is_missing(b) else "-",
                         "added/removed", ""))
            continue
        if is_number(a) and is_number(b):
            delta = b - a
            if delta == 0 and not show_all:
                continue
            pct = f"{100.0 * delta / a:+.1f}%" if a != 0 else "n/a"
            rows.append((key, fmt(a), fmt(b), f"{delta:+.6g}", pct))
        else:
            if a == b and not show_all:
                continue
            rows.append((key, fmt(a), fmt(b),
                         "=" if a == b else f"{fmt(a)} -> {fmt(b)}", ""))
    return rows


def print_table(rows):
    if not rows:
        print("no metric changed")
        return
    headers = ("metric", "old", "new", "delta", "pct")
    widths = [max(len(headers[i]), max(len(r[i]) for r in rows))
              for i in range(5)]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(v.ljust(w) for v, w in zip(r, widths)))


def run_gate(prev_dir, curr_dir, show_all=False):
    curr_files = sorted(glob.glob(os.path.join(curr_dir, "BENCH_*.json")))
    if not curr_files:
        print(f"bench_compare: no BENCH_*.json under {curr_dir}",
              file=sys.stderr)
        sys.exit(2)
    have_prev = os.path.isdir(prev_dir)
    if not have_prev:
        print(f"gate: no previous bench directory at {prev_dir} "
              "(first run or expired artifact) — checksum checks skipped")

    failures = []
    for curr_path in curr_files:
        name = os.path.basename(curr_path)
        print(f"\n=== {name} ===")
        # A broken current artifact is this run's bug, not an expired
        # baseline: fail the gate instead of crashing out with exit 2.
        curr = load(curr_path, required=False)
        if curr is None:
            failures.append(f"{name}: current artifact is unreadable")
            continue

        for flag in GATE_FLAGS:
            v = curr.get(flag)
            if is_missing(v):
                if flag in curr:
                    failures.append(
                        f"{name}: {flag} is NaN/null (verdict unusable)")
                continue
            if v == 0:
                failures.append(f"{name}: {flag} = 0 (in-run divergence)")

        prev_path = os.path.join(prev_dir, name)
        if not have_prev or not os.path.isfile(prev_path):
            print("(no previous file to compare against)")
            continue
        prev = load(prev_path, required=False)
        if prev is None:
            print("(previous file malformed — treated as absent)")
            continue
        print_table(diff_rows(prev, curr, show_all))

        for key in sorted(set(prev) | set(curr)):
            if not is_gated_checksum(key):
                continue
            a, b = prev.get(key), curr.get(key)
            if not is_missing(a) and not is_missing(b) and a != b:
                failures.append(
                    f"{name}: {key} {a} -> {b} "
                    "(this PR changed the bench's actual answers)")

    print()
    if failures:
        print("gate: FAILED — answer/ledger divergence:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(3)
    print("gate: OK — no answer or ledger divergence "
          "(timing deltas above are informational)")


def main():
    parser = argparse.ArgumentParser(
        description="Diff BENCH_*.json files; --gate fails only on "
                    "answer/ledger divergence.")
    parser.add_argument("old", help="baseline BENCH_*.json (or directory "
                        "of them with --gate)")
    parser.add_argument("new", help="candidate BENCH_*.json (or directory "
                        "of them with --gate)")
    parser.add_argument("--all", action="store_true",
                        help="also print unchanged metrics")
    parser.add_argument("--gate", action="store_true",
                        help="directory mode: fail (exit 3) on checksum or "
                        "determinism-flag divergence, tolerate missing "
                        "baselines, never fail on timing")
    args = parser.parse_args()

    if args.gate:
        run_gate(args.old, args.new, args.all)
        return

    print_table(diff_rows(load(args.old), load(args.new), args.all))


if __name__ == "__main__":
    main()
